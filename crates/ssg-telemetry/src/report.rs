//! Shared report envelope: one place that stamps and validates the
//! `schema` version header every machine-readable report in the workspace
//! carries (`ssg-bench/v2`, `ssg-churn/v1`, `ssg-load/v1`, `ssg-lab/v1`,
//! `ssg-trace/v1`, ...).
//!
//! Before this module each producer hand-rolled its own
//! `("schema", Json::Str(...))` first field and each consumer hand-rolled
//! its own mismatch message. [`ReportEnvelope`] centralizes both, so every
//! schema error in the workspace reads the same way:
//! `expected schema X, got Y`.
//!
//! ```
//! use ssg_telemetry::json::Json;
//! use ssg_telemetry::report::ReportEnvelope;
//!
//! const ENVELOPE: ReportEnvelope = ReportEnvelope::new("ssg-demo/v1");
//! let doc = ENVELOPE.stamp(vec![("ok".into(), Json::Bool(true))]);
//! assert_eq!(doc.render(), r#"{"schema":"ssg-demo/v1","ok":true}"#);
//! assert_eq!(ENVELOPE.expect(&doc), Ok("ssg-demo/v1"));
//! assert!(ENVELOPE
//!     .expect(&Json::parse(r#"{"schema":"ssg-demo/v2"}"#).unwrap())
//!     .unwrap_err()
//!     .contains("expected schema ssg-demo/v1, got ssg-demo/v2"));
//! ```

use crate::json::Json;

/// A report family's schema version header.
///
/// Construct one `const` per report family next to the code that renders
/// it, stamp outgoing documents with [`stamp`](ReportEnvelope::stamp), and
/// validate incoming ones with [`expect`](ReportEnvelope::expect) (or
/// [`expect_one_of`] when older versions stay readable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportEnvelope {
    /// The schema identifier this envelope stamps, e.g. `"ssg-lab/v1"`.
    pub schema: &'static str,
}

impl ReportEnvelope {
    /// An envelope for one schema identifier.
    pub const fn new(schema: &'static str) -> Self {
        ReportEnvelope { schema }
    }

    /// Builds the report object with the `schema` header as its first
    /// field, ahead of `fields` (insertion order is what renders).
    pub fn stamp(&self, fields: Vec<(String, Json)>) -> Json {
        let mut all = Vec::with_capacity(fields.len() + 1);
        all.push(("schema".to_string(), Json::Str(self.schema.to_string())));
        all.extend(fields);
        Json::Object(all)
    }

    /// Validates that `doc` carries exactly this envelope's schema header.
    /// Returns the matched identifier, or the workspace-standard
    /// `expected schema X, got Y` message.
    pub fn expect<'a>(&self, doc: &'a Json) -> Result<&'a str, String> {
        expect_one_of(doc, &[self.schema])
    }
}

/// Validates that `doc`'s `schema` header is one of `accepted` (useful
/// when a reader keeps accepting older versions, e.g. `ssg-bench/v1` and
/// `ssg-bench/v2`). Returns the matched identifier; the error message is
/// the workspace-standard `expected schema X, got Y` (with `X` an
/// `or`-joined list when several versions are accepted, and `Y` naming a
/// missing or non-string header explicitly).
pub fn expect_one_of<'a>(doc: &'a Json, accepted: &[&str]) -> Result<&'a str, String> {
    debug_assert!(!accepted.is_empty(), "a reader must accept some schema");
    let got = match doc.get("schema") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => "a non-string 'schema' value",
        None => "no 'schema' key",
    };
    if accepted.contains(&got) {
        // A match means the header was a string; return the slice out of
        // `doc` so the result borrows only the document.
        return Ok(doc
            .get("schema")
            .and_then(Json::as_str)
            .expect("a matched header is a string"));
    }
    Err(format!("expected schema {}, got {got}", accepted.join(" or ")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: ReportEnvelope = ReportEnvelope::new("ssg-bench/v2");

    #[test]
    fn stamp_puts_schema_first() {
        let doc = BENCH.stamp(vec![
            ("n".into(), Json::U64(4)),
            ("ok".into(), Json::Bool(true)),
        ]);
        assert_eq!(doc.render(), r#"{"schema":"ssg-bench/v2","n":4,"ok":true}"#);
        let empty = BENCH.stamp(Vec::new());
        assert_eq!(empty.render(), r#"{"schema":"ssg-bench/v2"}"#);
    }

    #[test]
    fn expect_round_trips_and_reports_mismatch() {
        let doc = BENCH.stamp(Vec::new());
        assert_eq!(BENCH.expect(&doc), Ok("ssg-bench/v2"));
        let other = ReportEnvelope::new("ssg-churn/v1").stamp(Vec::new());
        let err = BENCH.expect(&other).unwrap_err();
        assert_eq!(err, "expected schema ssg-bench/v2, got ssg-churn/v1");
    }

    #[test]
    fn expect_one_of_accepts_any_listed_version() {
        let v1 = ReportEnvelope::new("ssg-bench/v1").stamp(Vec::new());
        let accepted = ["ssg-bench/v1", "ssg-bench/v2"];
        assert_eq!(expect_one_of(&v1, &accepted), Ok("ssg-bench/v1"));
        let v3 = ReportEnvelope::new("ssg-bench/v3").stamp(Vec::new());
        let err = expect_one_of(&v3, &accepted).unwrap_err();
        assert_eq!(
            err,
            "expected schema ssg-bench/v1 or ssg-bench/v2, got ssg-bench/v3"
        );
    }

    #[test]
    fn missing_or_malformed_headers_are_named() {
        let err = BENCH.expect(&Json::Object(vec![])).unwrap_err();
        assert_eq!(err, "expected schema ssg-bench/v2, got no 'schema' key");
        let bad = Json::Object(vec![("schema".into(), Json::U64(2))]);
        let err = BENCH.expect(&bad).unwrap_err();
        assert_eq!(
            err,
            "expected schema ssg-bench/v2, got a non-string 'schema' value"
        );
    }
}
