//! Self-time profile trees over `ssg-trace/v1` dumps.
//!
//! A flight-recorder dump answers "what happened to request X"; a profile
//! answers "where does the time go overall". This module folds every span
//! in a [`TraceDump`] into a name-keyed call tree: spans are first linked
//! into per-trace trees by their parent ids, then merged by label path, so
//! `engine.solve` called under two different traces lands in one node with
//! `count = 2`. Each node carries total time, *self* time (total minus the
//! time spent in child spans — the flame-graph quantity), and exact
//! p50/p99 over its span durations (exact, not log2-bucketed: profiling is
//! offline, so the histogram trade-off buys nothing here).
//!
//! Self time is conservative by construction: within one trace, spans
//! nest, so the self times of a subtree sum back to the root span's
//! duration and never exceed the dump's wall-clock envelope.
//!
//! ```
//! use ssg_telemetry::export::TraceDump;
//! use ssg_telemetry::profile::Profile;
//! use ssg_telemetry::Metrics;
//!
//! let m = Metrics::with_tracing(64);
//! {
//!     let _scope = m.trace_scope(1);
//!     let _req = m.span("request");
//!     let _solve = m.span("solve");
//! }
//! let dump = TraceDump::from_json(&m.recorder().unwrap().to_json()).unwrap();
//! let profile = Profile::from_dump(&dump);
//! assert_eq!(profile.roots.len(), 1);
//! assert_eq!(profile.roots[0].name, "request");
//! assert_eq!(profile.roots[0].children[0].name, "solve");
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::export::{DumpEvent, TraceDump};
use crate::json::Json;
use crate::report::ReportEnvelope;

/// Envelope for `ssg profile` reports.
pub const PROFILE_ENVELOPE: ReportEnvelope = ReportEnvelope::new("ssg-profile/v1");

/// One node of the aggregated call tree: every span that ran under the
/// same label path, merged.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span label, e.g. `"engine.solve"`.
    pub name: String,
    /// How many spans merged into this node.
    pub count: u64,
    /// Sum of span durations (nanoseconds).
    pub total_ns: u64,
    /// Total minus time spent in child spans — the flame-graph quantity.
    pub self_ns: u64,
    /// Exact median span duration.
    pub p50_ns: u64,
    /// Exact 99th-percentile span duration.
    pub p99_ns: u64,
    /// Child nodes, hottest (largest `total_ns`) first.
    pub children: Vec<ProfileNode>,
}

/// Aggregation state while the tree is being built.
#[derive(Debug, Default)]
struct Agg {
    total_ns: u64,
    self_ns: u64,
    durations: Vec<u64>,
    children: BTreeMap<String, Agg>,
}

/// The aggregated profile of one dump.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Spans folded into the tree.
    pub spans: u64,
    /// Distinct trace ids those spans belonged to.
    pub traces: u64,
    /// Wall-clock envelope of the whole dump (max end − min start over
    /// *all* events), nanoseconds.
    pub wall_ns: u64,
    /// Root nodes, hottest first.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// Builds the profile tree from a parsed dump.
    pub fn from_dump(dump: &TraceDump) -> Profile {
        let spans: Vec<&DumpEvent> = dump.events.iter().filter(|e| e.is_span()).collect();
        let trace_ids: BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
        let mut root_agg = Agg::default();
        for &trace in &trace_ids {
            fold_trace(
                &mut root_agg,
                &spans
                    .iter()
                    .copied()
                    .filter(|s| s.trace_id == trace)
                    .collect::<Vec<_>>(),
            );
        }
        let (lo, hi) = dump.envelope_ns();
        Profile {
            spans: u64::try_from(spans.len()).unwrap_or(u64::MAX),
            traces: u64::try_from(trace_ids.len()).unwrap_or(u64::MAX),
            wall_ns: hi.saturating_sub(lo),
            roots: finish(root_agg.children),
        }
    }

    /// The profile as an `ssg-profile/v1` report document.
    pub fn to_json(&self) -> Json {
        PROFILE_ENVELOPE.stamp(vec![
            ("spans".into(), Json::U64(self.spans)),
            ("traces".into(), Json::U64(self.traces)),
            ("wall_ns".into(), Json::U64(self.wall_ns)),
            (
                "roots".into(),
                Json::Array(self.roots.iter().map(node_json).collect()),
            ),
        ])
    }

    /// Human-readable tree, hottest branches first.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} span(s) over {} trace(s), wall envelope {}",
            self.spans,
            self.traces,
            fmt_ns(self.wall_ns)
        );
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>6}  {:<10} {:<10} name",
            "total", "self", "count", "p50", "p99"
        );
        for root in &self.roots {
            write_node(&mut out, root, 0);
        }
        out
    }
}

/// Folds one trace's spans (linked by parent id) into the aggregate tree.
/// A parent id missing from the trace (evicted, or a wire parent recorded
/// by another process) makes its child a root.
fn fold_trace(root: &mut Agg, spans: &[&DumpEvent]) {
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent_id != 0 && ids.contains(&s.parent_id) && s.parent_id != s.span_id {
            children.entry(s.parent_id).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let mut stack: Vec<(usize, Vec<String>)> = Vec::new();
    for &i in &roots {
        stack.push((i, Vec::new()));
    }
    while let Some((i, path)) = stack.pop() {
        let s = spans[i];
        let dur = s.end_ns.saturating_sub(s.start_ns);
        let kid_total: u64 = children
            .get(&s.span_id)
            .map(|kids| {
                kids.iter()
                    .map(|&k| spans[k].end_ns.saturating_sub(spans[k].start_ns))
                    .sum()
            })
            .unwrap_or(0);
        let mut node = &mut *root;
        for seg in &path {
            node = node.children.entry(seg.clone()).or_default();
        }
        let node = node.children.entry(s.name.clone()).or_default();
        node.total_ns += dur;
        node.self_ns += dur.saturating_sub(kid_total);
        node.durations.push(dur);
        if let Some(kids) = children.get(&s.span_id) {
            let mut child_path = path.clone();
            child_path.push(s.name.clone());
            for &k in kids {
                stack.push((k, child_path.clone()));
            }
        }
    }
}

/// Turns aggregation state into finished nodes, hottest first.
fn finish(aggs: BTreeMap<String, Agg>) -> Vec<ProfileNode> {
    let mut nodes: Vec<ProfileNode> = aggs
        .into_iter()
        .map(|(name, mut agg)| {
            agg.durations.sort_unstable();
            ProfileNode {
                name,
                count: u64::try_from(agg.durations.len()).unwrap_or(u64::MAX),
                total_ns: agg.total_ns,
                self_ns: agg.self_ns,
                p50_ns: quantile(&agg.durations, 0.50),
                p99_ns: quantile(&agg.durations, 0.99),
                children: finish(agg.children),
            }
        })
        .collect();
    nodes.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    nodes
}

/// Exact quantile over sorted durations (nearest-rank on the upper side,
/// so it never understates).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn node_json(node: &ProfileNode) -> Json {
    Json::Object(vec![
        ("name".into(), Json::Str(node.name.clone())),
        ("count".into(), Json::U64(node.count)),
        ("total_ns".into(), Json::U64(node.total_ns)),
        ("self_ns".into(), Json::U64(node.self_ns)),
        ("p50_ns".into(), Json::U64(node.p50_ns)),
        ("p99_ns".into(), Json::U64(node.p99_ns)),
        (
            "children".into(),
            Json::Array(node.children.iter().map(node_json).collect()),
        ),
    ])
}

fn write_node(out: &mut String, node: &ProfileNode, depth: usize) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>6}  {:<10} {:<10} {}{}",
        fmt_ns(node.total_ns),
        fmt_ns(node.self_ns),
        node.count,
        fmt_ns(node.p50_ns),
        fmt_ns(node.p99_ns),
        "  ".repeat(depth),
        node.name
    );
    for child in &node.children {
        write_node(out, child, depth + 1);
    }
}

/// Compact duration rendering: `850ns`, `4.2µs`, `1.3ms`, `2.1s`.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.1}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: &str, start: u64, end: u64) -> DumpEvent {
        DumpEvent {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: name.into(),
            kind: "span".into(),
            start_ns: start,
            end_ns: end,
        }
    }

    fn dump(events: Vec<DumpEvent>) -> TraceDump {
        TraceDump {
            capacity: 64,
            dropped: 0,
            incidents: 0,
            events,
        }
    }

    #[test]
    fn tree_shape_is_pinned_on_a_hand_built_sequence() {
        // Two traces with the same shape: request{ solve{ palette } },
        // plus a second solve call directly under one request.
        let d = dump(vec![
            span(1, 3, 2, "palette", 20, 40),
            span(1, 2, 1, "solve", 10, 60),
            span(1, 1, 0, "request", 0, 100),
            span(2, 6, 5, "palette", 220, 230),
            span(2, 5, 4, "solve", 210, 260),
            span(2, 7, 4, "solve", 270, 290),
            span(2, 4, 0, "request", 200, 300),
        ]);
        let p = Profile::from_dump(&d);
        assert_eq!(p.spans, 7);
        assert_eq!(p.traces, 2);
        assert_eq!(p.roots.len(), 1);
        let request = &p.roots[0];
        assert_eq!(request.name, "request");
        assert_eq!(request.count, 2);
        assert_eq!(request.total_ns, 100 + 100);
        // Self = (100 - 50) + (100 - (50 + 20)).
        assert_eq!(request.self_ns, 50 + 30);
        assert_eq!(request.children.len(), 1);
        let solve = &request.children[0];
        assert_eq!(solve.name, "solve");
        assert_eq!(solve.count, 3);
        assert_eq!(solve.total_ns, 50 + 50 + 20);
        assert_eq!(solve.self_ns, (50 - 20) + (50 - 10) + 20);
        let palette = &solve.children[0];
        assert_eq!(palette.name, "palette");
        assert_eq!(palette.count, 2);
        assert_eq!(palette.total_ns, 30);
        assert_eq!(palette.self_ns, 30);
        assert!(palette.children.is_empty());
        // Exact quantiles over [20, 50, 50].
        assert_eq!(solve.p50_ns, 50);
        assert_eq!(solve.p99_ns, 50);
    }

    #[test]
    fn self_times_sum_to_the_roots_and_fit_the_wall_envelope() {
        let d = dump(vec![
            span(1, 3, 2, "palette", 20, 40),
            span(1, 2, 1, "solve", 10, 60),
            span(1, 1, 0, "request", 0, 100),
        ]);
        let p = Profile::from_dump(&d);
        fn sum_self(nodes: &[ProfileNode]) -> u64 {
            nodes
                .iter()
                .map(|n| n.self_ns + sum_self(&n.children))
                .sum()
        }
        let total_self = sum_self(&p.roots);
        let root_total: u64 = p.roots.iter().map(|r| r.total_ns).sum();
        // Conservation: self times sum exactly back to the root spans, and
        // a sequential trace's root span fits the dump envelope.
        assert_eq!(total_self, root_total);
        assert!(root_total <= p.wall_ns);
        assert_eq!(p.wall_ns, 100);
    }

    #[test]
    fn orphaned_wire_parents_profile_as_roots() {
        // A server-side dump: the parent span id came off the wire and was
        // recorded by the client, so it is absent here.
        let d = dump(vec![
            span(5, 10, 999, "engine.solve", 0, 80),
            span(5, 11, 10, "palette", 10, 30),
        ]);
        let p = Profile::from_dump(&d);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].name, "engine.solve");
        assert_eq!(p.roots[0].self_ns, 60);
        assert_eq!(p.roots[0].children[0].name, "palette");
    }

    #[test]
    fn report_has_the_envelope_and_renders_text() {
        let d = dump(vec![span(1, 1, 0, "request", 0, 1_500_000)]);
        let p = Profile::from_dump(&d);
        let doc = p.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ssg-profile/v1")
        );
        assert_eq!(doc.get("wall_ns").and_then(Json::as_u64), Some(1_500_000));
        assert!(PROFILE_ENVELOPE.expect(&doc).is_ok());
        let text = p.to_text();
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("1.5ms"), "{text}");
    }

    #[test]
    fn empty_dump_profiles_to_nothing() {
        let p = Profile::from_dump(&dump(Vec::new()));
        assert_eq!(p.spans, 0);
        assert_eq!(p.wall_ns, 0);
        assert!(p.roots.is_empty());
        assert!(p.to_text().contains("0 span(s)"));
    }
}
