//! Incremental dynamic channel assignment: the corridor epoch loop
//! rebuilt around [`GraphDelta`] patching and region recoloring.
//!
//! [`simulate_corridor`](crate::dynamics::simulate_corridor) rebuilds the
//! whole conflict graph and resolves from scratch every epoch — `O(n)`
//! work no matter how small the churn. [`simulate_corridor_incremental`]
//! keeps one persistent slot-indexed conflict graph and, per epoch:
//!
//! 1. translates departures/arrivals into a [`GraphDelta`] (departed
//!    stations become *tombstone* slots — their incident edges are removed
//!    and the slot is recycled for a later arrival, so survivor vertex ids
//!    never move, which is the id-stability contract `apply_delta` needs);
//! 2. patches the CSR in place via [`Graph::apply_delta_with`];
//! 3. computes the dirty region (arrival seeds closed to distance `t`) and
//!    hands the frozen coloring to
//!    [`IncrementalSolver`], whose span
//!    gate against a cached clique witness certifies every accepted patch
//!    as optimal — epochs where the witness died or the region grew too
//!    big fall back to the Figure-1 solve, which also refreshes the
//!    witness.
//!
//! Per-epoch arrival wiring uses a uniform bucket grid over positions
//! (cell width `2·range_max`, the maximum conflict reach), so discovering
//! an arrival's edges costs `O(local density)`, not `O(n)`.
//!
//! The RNG call sequence exactly mirrors the from-scratch simulation, so
//! the two runs see identical fleets under the same seed — the tests pin
//! per-epoch span equality on that.

use crate::dynamics::{mean, ChurnReport, DynamicsConfig};
use crate::scenario::Station;
use rand::Rng;
use ssg_graph::traversal::UNREACHABLE;
use ssg_graph::{dirty_region_into, BfsScratch, DeltaScratch, Graph, GraphDelta, Vertex};
use ssg_intervals::IntervalRepresentation;
use ssg_labeling::interval::l1_coloring_ws;
use ssg_labeling::{FallbackReason, IncrementalSolver, Labeling, Workspace, UNCOLORED};
use ssg_telemetry::hist::Histogram;
use ssg_telemetry::{Hist, Metrics};
use std::collections::VecDeque;
use std::time::Instant;

/// Persistent slot-indexed corridor state: the patched conflict graph,
/// per-slot stations/colors, tombstone free list, and the position grid.
struct SlotCorridor {
    /// `stations[v]` is the live station occupying graph vertex `v`, or a
    /// tombstone (`None`) whose slot is waiting on the free list.
    stations: Vec<Option<Station>>,
    /// Per-slot channel; tombstones are parked at 0 so they never lift the
    /// span, arrivals start at [`UNCOLORED`].
    colors: Vec<u32>,
    /// Per-slot cached left endpoint (`position - range`), refreshed when
    /// the slot is claimed; stale for tombstones, which are never ordered.
    lefts: Vec<f64>,
    free: Vec<Vertex>,
    graph: Graph,
    /// Bucket grid over positions: cell width `2·range_max` bounds the
    /// conflict reach, so overlap candidates live in adjacent cells only.
    grid: Vec<Vec<Vertex>>,
    cell_width: f64,
}

impl SlotCorridor {
    fn new(range_max: f64) -> Self {
        SlotCorridor {
            stations: Vec::new(),
            colors: Vec::new(),
            lefts: Vec::new(),
            free: Vec::new(),
            graph: Graph::from_edges(0, &[]).expect("empty graph"),
            grid: Vec::new(),
            cell_width: 2.0 * range_max,
        }
    }

    fn cell_of(&self, position: f64) -> usize {
        (position / self.cell_width).max(0.0) as usize
    }

    fn live(&self) -> usize {
        self.stations.iter().flatten().count()
    }

    /// Conflict test mirroring `IntervalRepresentation::from_floats`'s
    /// closed-interval semantics on `[p - r, p + r]` footprints.
    fn conflicts(a: Station, b: Station) -> bool {
        (a.position - b.position).abs() <= a.range + b.range
    }

    /// Slots conflicting with `s`, via the grid: `O(local density)`.
    fn overlaps_of(&self, s: Station, out: &mut Vec<Vertex>) {
        out.clear();
        let c = self.cell_of(s.position);
        for cell in c.saturating_sub(1)..=c + 1 {
            let Some(bucket) = self.grid.get(cell) else {
                continue;
            };
            for &u in bucket {
                if let Some(other) = self.stations[u as usize] {
                    if Self::conflicts(s, other) {
                        out.push(u);
                    }
                }
            }
        }
    }

    /// Claims a slot for an arrival: recycle a tombstone or grow by one.
    /// Returns the slot id; `delta.add_vertices` is bumped when growing.
    fn claim_slot(&mut self, s: Station, delta: &mut GraphDelta) -> Vertex {
        let v = match self.free.pop() {
            Some(v) => {
                self.stations[v as usize] = Some(s);
                self.colors[v as usize] = UNCOLORED;
                self.lefts[v as usize] = s.position - s.range;
                v
            }
            None => {
                let v = self.stations.len() as Vertex;
                self.stations.push(Some(s));
                self.colors.push(UNCOLORED);
                self.lefts.push(s.position - s.range);
                delta.add_vertices += 1;
                v
            }
        };
        let cell = self.cell_of(s.position);
        if cell >= self.grid.len() {
            self.grid.resize_with(cell + 1, Vec::new);
        }
        self.grid[cell].push(v);
        v
    }

    /// Releases a departed station's slot: drop its incident edges into
    /// the delta, park the color at 0, tombstone the slot.
    fn release_slot(&mut self, v: Vertex, delta: &mut GraphDelta) {
        let s = self.stations[v as usize].take().expect("slot is live");
        for &u in self.graph.neighbors(v) {
            delta.remove_edge(v, u);
        }
        self.colors[v as usize] = 0;
        let cell = self.cell_of(s.position);
        self.grid[cell].retain(|&u| u != v);
        self.free.push(v);
    }
}

/// Rebuilds the clique witness with a prefix-ball sweep (Lemma 3) directly
/// on the patched slot graph: the prefix ball of slot `v` is its
/// distance-`<= t` ball filtered to slots at or before `v` in the interval
/// ordering, decided by comparing cached left endpoints (ties by slot id) —
/// no sorted order needs maintaining. `O(n · ball)` with no representation
/// rebuild — much cheaper than the Figure-1 resolve it saves, which is what
/// keeps the span lower bound alive across epochs whose churn kills the
/// cached witness. Tombstone slots are isolated and skipped, so no walk
/// ever reaches one and their stale cached endpoints are never read.
///
/// Also returns a stack of *backups*: equal-sized maximum cliques pairwise
/// vertex-disjoint from the primary and each other, drawn from the sweep's
/// ties. Departures rarely hit every clique in one window, so the stack
/// turns most witness-death epochs into a promotion instead of a resweep.
fn slot_clique_witness(
    graph: &Graph,
    stations: &[Option<Station>],
    lefts: &[f64],
    t: u32,
    dist: &mut Vec<u32>,
) -> (Vec<Vertex>, Vec<Vec<Vertex>>) {
    let n = graph.num_vertices();
    dist.clear();
    dist.resize(n, UNREACHABLE);
    // Interval-order comparison on cached endpoints: `u` is in `v`'s prefix
    // iff it starts no later (slot id breaks exact ties deterministically).
    let before = |u: Vertex, v: Vertex| {
        lefts[u as usize]
            .total_cmp(&lefts[v as usize])
            .then(u.cmp(&v))
            .is_le()
    };
    let mut queue = VecDeque::new();
    let mut ball: Vec<Vertex> = Vec::new();
    let mut best: Vec<Vertex> = Vec::new();
    // Sweep centers tying the running maximum — backup candidates.
    let mut ties: Vec<Vertex> = Vec::new();
    for v in 0..n as Vertex {
        if stations[v as usize].is_none() {
            continue;
        }
        ball_walk(graph, v, t, dist, &mut queue, &mut ball);
        let prefix = ball.iter().filter(|&&u| before(u, v)).count();
        if prefix > best.len() {
            best.clear();
            best.extend(ball.iter().copied().filter(|&u| before(u, v)));
            ties.clear();
        } else if prefix == best.len() && ties.len() < 64 {
            ties.push(v);
        }
        for &u in &ball {
            dist[u as usize] = UNREACHABLE;
        }
    }
    // Backups: ties whose prefix balls are vertex-disjoint from the
    // primary (so the departure that kills the primary cannot take the
    // whole stack with it — overlap *between* backups is acceptable
    // redundancy). An equal size is required — a smaller clique's bound
    // would just trip the span gate later.
    let mut in_primary = vec![false; n];
    for &u in &best {
        in_primary[u as usize] = true;
    }
    let mut backups: Vec<Vec<Vertex>> = Vec::new();
    for &v in &ties {
        if backups.len() >= 8 {
            break;
        }
        ball_walk(graph, v, t, dist, &mut queue, &mut ball);
        let prefix: Vec<Vertex> = ball.iter().copied().filter(|&u| before(u, v)).collect();
        for &u in &ball {
            dist[u as usize] = UNREACHABLE;
        }
        if prefix.len() == best.len() && prefix.iter().all(|&u| !in_primary[u as usize]) {
            let mut b = prefix;
            b.sort_unstable();
            backups.push(b);
        }
    }
    best.sort_unstable();
    (best, backups)
}

/// Truncated BFS collecting the distance-`<= t` ball of `v` into `ball`.
/// The caller owns the `dist` invariant: all-`UNREACHABLE` on entry, and
/// resets the ball's entries after reading it (ball-local resets keep a
/// sweep `O(n · ball)` instead of `O(n²)`).
fn ball_walk(
    graph: &Graph,
    v: Vertex,
    t: u32,
    dist: &mut [u32],
    queue: &mut VecDeque<Vertex>,
    ball: &mut Vec<Vertex>,
) {
    ball.clear();
    queue.clear();
    dist[v as usize] = 0;
    queue.push_back(v);
    while let Some(u) = queue.pop_front() {
        ball.push(u);
        let du = dist[u as usize];
        if du >= t {
            continue;
        }
        for &w in graph.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
}

/// Largest prefix ball whose closing vertex lies in `centers`. Arrivals
/// can only grow the graph's maximum clique via cliques that touch the
/// epoch's dirty region (every new edge is incident to a seed), so
/// sweeping just the region's vertices after a patch keeps an inherited
/// witness *exact* for `O(|region| · ball)` — the global resweep is then
/// only ever paid when churn kills every cached clique.
fn prefix_ball_best(
    graph: &Graph,
    centers: &[Vertex],
    lefts: &[f64],
    t: u32,
    dist: &mut Vec<u32>,
) -> Vec<Vertex> {
    let n = graph.num_vertices();
    dist.clear();
    dist.resize(n, UNREACHABLE);
    let before = |u: Vertex, v: Vertex| {
        lefts[u as usize]
            .total_cmp(&lefts[v as usize])
            .then(u.cmp(&v))
            .is_le()
    };
    let mut queue = VecDeque::new();
    let mut ball: Vec<Vertex> = Vec::new();
    let mut best: Vec<Vertex> = Vec::new();
    for &v in centers {
        ball_walk(graph, v, t, dist, &mut queue, &mut ball);
        let prefix = ball.iter().filter(|&&u| before(u, v)).count();
        if prefix > best.len() {
            best.clear();
            best.extend(ball.iter().copied().filter(|&u| before(u, v)));
        }
        for &u in &ball {
            dist[u as usize] = UNREACHABLE;
        }
    }
    best.sort_unstable();
    best
}

/// Bumps the live-color histogram, growing it to fit color `c`.
fn bump_color(counts: &mut Vec<u32>, c: u32) {
    let i = c as usize;
    if counts.len() <= i {
        counts.resize(i + 1, 0);
    }
    counts[i] += 1;
}

/// Exact liveness check for a cached clique on the patched graph: every
/// member must still be pairwise within distance `t`. `O(|W| · ball)` —
/// cliques are small, so this is far cheaper than a resweep.
fn clique_intact(
    graph: &Graph,
    clique: &[Vertex],
    t: u32,
    bfs: &mut BfsScratch,
    scratch: &mut Vec<Vertex>,
) -> bool {
    for &w in clique {
        dirty_region_into(graph, &[w], t, bfs, scratch);
        for &u in clique {
            if scratch.binary_search(&u).is_err() {
                return false;
            }
        }
    }
    true
}

/// Sorts slot ids by cached left endpoint (ties by slot id) — the
/// canonical interval ordering. The stable sort is adaptive, so
/// re-sorting a nearly-sorted order costs roughly `O(n + moved · log n)`,
/// not a full `n log n`.
fn sort_by_left(slots: &mut [Vertex], lefts: &[f64]) {
    slots.sort_by(|&a, &b| {
        lefts[a as usize]
            .total_cmp(&lefts[b as usize])
            .then(a.cmp(&b))
    });
}

/// [`simulate_corridor_incremental_with`] without telemetry.
pub fn simulate_corridor_incremental<R: Rng>(cfg: DynamicsConfig, rng: &mut R) -> ChurnReport {
    simulate_corridor_incremental_with(cfg, rng, &Metrics::disabled())
}

/// Runs the corridor dynamics with delta patching and region recoloring
/// instead of per-epoch rebuilds. Spans are certified: every epoch's
/// assignment has exactly the optimal `L(1,...,1)` span (accepted patches
/// are pinned to a clique-witness lower bound; everything else re-runs the
/// Figure-1 solver). Under the same seed the fleet evolution is identical
/// to [`simulate_corridor`](crate::dynamics::simulate_corridor) with
/// [`Policy::OptimalL1`](crate::dynamics::Policy::OptimalL1).
pub fn simulate_corridor_incremental_with<R: Rng>(
    cfg: DynamicsConfig,
    rng: &mut R,
    metrics: &Metrics,
) -> ChurnReport {
    let DynamicsConfig {
        initial,
        epochs,
        p_depart,
        arrivals_max,
        corridor_len,
        range_min,
        range_max,
        t,
    } = cfg;
    assert!((0.0..=1.0).contains(&p_depart));
    assert!(corridor_len > 0.0 && range_min > 0.0 && range_max >= range_min);
    let mut next_id: u64 = 0;
    let mut new_station = |rng: &mut R| {
        let id = next_id;
        next_id += 1;
        (
            id,
            Station {
                position: rng.gen_range(0.0..corridor_len),
                range: rng.gen_range(range_min..=range_max),
            },
        )
    };

    let mut corridor = SlotCorridor::new(range_max);
    // Every patch is certificate-gated, so a generous region cap is safe:
    // past half the graph a fresh solve genuinely is cheaper, but below
    // that the staged retries should get their chance.
    let mut inc = IncrementalSolver::with_config(ssg_labeling::IncrementalConfig {
        region_threshold: 0.5,
    });
    let mut ws = Workspace::new();
    let mut delta_scratch = DeltaScratch::new();
    let mut bfs = BfsScratch::new();
    let mut overlap_buf: Vec<Vertex> = Vec::new();
    let mut dirty: Vec<Vertex> = Vec::new();
    let mut seeds: Vec<Vertex> = Vec::new();
    let mut retry_seeds: Vec<Vertex> = Vec::new();
    let mut delta = GraphDelta::new();
    // Cached clique witness: slot ids of a clique in the *current* graph,
    // proving span >= len-1. Arrivals can only tighten distances, so they
    // never invalidate it; removal churn near it does. `backups` is a
    // stack of equal-sized pairwise-disjoint cliques promoted when the
    // primary dies, so a resweep is only paid when churn exhausts them.
    let mut witness: Vec<Vertex> = Vec::new();
    let mut dead_witness: Vec<Vertex> = Vec::new();
    let mut backups: Vec<Vec<Vertex>> = Vec::new();
    let mut backup_suspects: Vec<bool> = Vec::new();
    let mut color_order: Vec<Vertex> = Vec::new();
    let mut wit_dist: Vec<u32> = Vec::new();
    // Live-color histogram: counts per color over live slots, kept in sync
    // with every commit so the epoch span is its length, not an O(n) scan.
    let mut color_counts: Vec<u32> = Vec::new();

    // The fleet mirrors the from-scratch simulation exactly (same Vec
    // order, same RNG call sequence); `slot` tracks each entry's vertex.
    let mut fleet: Vec<(u64, Station, Vertex)> = Vec::with_capacity(initial);
    for _ in 0..initial {
        let (id, s) = new_station(rng);
        let v = corridor.claim_slot(s, &mut delta);
        fleet.push((id, s, v));
    }
    // Wire the initial fleet through the same delta path as later epochs.
    for &(_, s, v) in &fleet {
        corridor.overlaps_of(s, &mut overlap_buf);
        for &u in &overlap_buf {
            if u != v {
                delta.add_edge(v, u);
            }
        }
    }
    corridor
        .graph
        .apply_delta_with(&delta, &mut delta_scratch, metrics)
        .expect("initial delta is valid");
    delta.clear();
    // Color the initial fleet once, outside the epoch loop: this is setup
    // (the from-scratch simulation starts from an equally solved state
    // conceptually — it recomputes everything anyway), so epoch 1 patches
    // a valid coloring instead of being forced into a full resolve by the
    // all-UNCOLORED start.
    if !fleet.is_empty() {
        let live: Vec<(Vertex, Station)> = corridor
            .stations
            .iter()
            .enumerate()
            .filter_map(|(v, s)| s.map(|s| (v as Vertex, s)))
            .collect();
        let rep = IntervalRepresentation::from_floats(
            &live
                .iter()
                .map(|(_, s)| (s.position - s.range, s.position + s.range))
                .collect::<Vec<_>>(),
        )
        .expect("positive ranges yield valid intervals");
        let out = l1_coloring_ws(&rep, t, &mut ws, metrics);
        for v in 0..live.len() as Vertex {
            let (slot, _) = live[rep.original_index(v)];
            corridor.colors[slot as usize] = out.labeling.colors()[v as usize];
        }
        for &(slot, _) in &live {
            bump_color(&mut color_counts, corridor.colors[slot as usize]);
        }
        (witness, backups) = slot_clique_witness(
            &corridor.graph,
            &corridor.stations,
            &corridor.lefts,
            t,
            &mut wit_dist,
        );
        ws.recycle(out.labeling);
    }

    let mut spans = Vec::with_capacity(epochs);
    let mut epoch_spans = Vec::with_capacity(epochs);
    let mut epoch_recolored = Vec::with_capacity(epochs);
    let mut epoch_frozen = Vec::with_capacity(epochs);
    let mut churns = Vec::with_capacity(epochs);
    let mut sizes = Vec::with_capacity(epochs);
    let mut total_retunes = 0usize;
    let mut full_resolves = 0usize;
    let mut max_span = 0u32;
    let epoch_hist = Histogram::new();
    let mut epoch_solve_ns = Vec::with_capacity(epochs);

    for _ in 0..epochs {
        let _epoch_span = metrics.span("netsim.epoch.incremental");
        // Departures and arrivals — identical RNG sequence to the
        // from-scratch loop (retain, then arrival count, then stations).
        let mut departed: Vec<Vertex> = Vec::new();
        fleet.retain(|&(_, _, v)| {
            let stays = !rng.gen_bool(p_depart);
            if !stays {
                departed.push(v);
            }
            stays
        });
        let arrivals = rng.gen_range(0..=arrivals_max);
        let mut arrived: Vec<(u64, Station)> = (0..arrivals).map(|_| new_station(rng)).collect();
        if fleet.is_empty() && arrived.is_empty() {
            arrived.push(new_station(rng));
        }
        sizes.push((fleet.len() + arrived.len()) as f64);

        let solve_start = Instant::now();
        // Epoch delta: tombstone the departed, wire the arrived. Witness
        // liveness: a departing member kills the clique outright (checked
        // before its slot can be recycled by an arrival); removal churn
        // within radius t of the clique (closure on the pre-patch graph)
        // can stretch member distances, so such a witness is *suspect* and
        // gets exactly re-verified on the patched graph below instead of
        // being discarded. Arrivals only tighten distances — no check.
        let mut witness_suspect = false;
        backup_suspects.clear();
        // Whether this epoch's bound is a fresh sweep maximum (exact λ*)
        // rather than an inherited clique that may have gone stale-low.
        let mut bound_exact = false;
        let mut swept_in_retry = false;
        if !witness.is_empty() && departed.iter().any(|d| witness.binary_search(d).is_ok()) {
            // Keep the corpse: its survivors seed the local repair sweep.
            std::mem::swap(&mut dead_witness, &mut witness);
            witness.clear();
        }
        backups.retain(|b| !departed.iter().any(|d| b.binary_search(d).is_ok()));
        for &v in &departed {
            // Histogram upkeep must read the color before the release
            // zeroes the slot.
            let c = corridor.colors[v as usize];
            if c != UNCOLORED {
                color_counts[c as usize] -= 1;
            }
            corridor.release_slot(v, &mut delta);
        }
        if (!witness.is_empty() || !backups.is_empty()) && !delta.remove_edges.is_empty() {
            let rm_seeds = delta.removal_seeds(&corridor.graph);
            dirty_region_into(&corridor.graph, &rm_seeds, t, &mut bfs, &mut dirty);
            witness_suspect = witness.iter().any(|w| dirty.binary_search(w).is_ok());
            backup_suspects.extend(
                backups
                    .iter()
                    .map(|b| b.iter().any(|w| dirty.binary_search(w).is_ok())),
            );
        }
        seeds.clear();
        for (id, s) in arrived {
            // Query the grid before inserting so earlier arrivals of this
            // epoch are seen too (the grid holds them already).
            corridor.overlaps_of(s, &mut overlap_buf);
            let v = corridor.claim_slot(s, &mut delta);
            for &u in &overlap_buf {
                delta.add_edge(v, u);
            }
            seeds.push(v);
            fleet.push((id, s, v));
        }
        corridor
            .graph
            .apply_delta_with(&delta, &mut delta_scratch, metrics)
            .expect("epoch delta is valid");
        delta.clear();

        #[cfg(debug_assertions)]
        debug_check_graph_parity(&corridor);

        // A suspect clique survives iff its members are still pairwise
        // within distance t on the patched graph — an exact check costing
        // O(|W| · ball), and |W| is a clique so it is small.
        if witness_suspect
            && !witness.is_empty()
            && !clique_intact(&corridor.graph, &witness, t, &mut bfs, &mut dirty)
        {
            std::mem::swap(&mut dead_witness, &mut witness);
            witness.clear();
        }
        if !backup_suspects.is_empty() {
            let mut i = 0;
            backups.retain(|b| {
                let keep = !backup_suspects[i]
                    || clique_intact(&corridor.graph, b, t, &mut bfs, &mut dirty);
                i += 1;
                keep
            });
        }
        // Dead primary: promote a (verified) backup when one is alive —
        // an equal-sized clique proves the same bound for free.
        if witness.is_empty() {
            if let Some(b) = backups.pop() {
                witness = b;
            }
        }
        // Every cached clique is dead. Try a local repair before paying a
        // global resweep: a dense clique that lost a member usually has an
        // equal-sized replacement in its own neighborhood (the survivors
        // close with a nearby vertex). Removals can only lower the
        // optimum, so an equal-or-larger clique found near the corpse pins
        // λ* exactly; arrival-driven growth is caught by the region-local
        // sweep below either way.
        if witness.is_empty() && !dead_witness.is_empty() {
            retry_seeds.clear();
            retry_seeds.extend(
                dead_witness
                    .iter()
                    .copied()
                    .filter(|&v| corridor.stations[v as usize].is_some()),
            );
            if !retry_seeds.is_empty() {
                dirty_region_into(&corridor.graph, &retry_seeds, t, &mut bfs, &mut dirty);
                let cand =
                    prefix_ball_best(&corridor.graph, &dirty, &corridor.lefts, t, &mut wit_dist);
                if cand.len() + 1 >= dead_witness.len() && !cand.is_empty() {
                    witness = cand;
                }
            }
        }
        // Repair came up short => no trustworthy lower bound => every
        // epoch would fall back. The prefix-ball sweep rebuilds the
        // witness and its backup stack in O(n · ball), far cheaper than
        // the Figure-1 resolve it saves.
        if witness.is_empty() && corridor.live() > 0 {
            (witness, backups) = slot_clique_witness(
                &corridor.graph,
                &corridor.stations,
                &corridor.lefts,
                t,
                &mut wit_dist,
            );
            bound_exact = true;
        }

        // Region resolve against the frozen survivors. Stage 1 must be
        // *sound*, not just span-equal: seeds alone are not enough, because
        // an arrival bridging two frozen survivors creates a new conflict
        // between two vertices the solver never looks at. Every pair newly
        // within distance ≤ t reached that distance through a seed, so one
        // endpoint always sits within ⌊t/2⌋ of a seed:
        //  - t == 1: new constraints are seed-incident edges; seeds alone
        //    are sound.
        //  - t == 2: the new pairs are exactly co-neighbors of a seed, and
        //    (since the previous coloring was valid, previously-close pairs
        //    already differ) the *violating* ones are exactly the
        //    equal-colored live pairs among each seed's neighbors — a cheap
        //    O(Σ deg²) pre-scan names them, and recoloring one endpoint per
        //    pair restores soundness at nearly seeds-only cost.
        //  - t >= 3: fall back to the radius-⌊t/2⌋ closure.
        // The span gate still decides whether the region was *wide* enough;
        // only gate trips pay for wider regions.
        let sep = ssg_labeling::SeparationVector::all_ones(t);
        if t == 2 {
            dirty.clear();
            dirty.extend_from_slice(&seeds);
            for &m in &seeds {
                let nbrs = corridor.graph.neighbors(m);
                for (i, &u) in nbrs.iter().enumerate() {
                    let cu = corridor.colors[u as usize];
                    if cu == UNCOLORED {
                        continue;
                    }
                    for &w in &nbrs[i + 1..] {
                        if corridor.colors[w as usize] == cu {
                            dirty.push(w);
                        }
                    }
                }
            }
            dirty.sort_unstable();
            dirty.dedup();
        } else if t < 2 {
            dirty.clear();
            dirty.extend_from_slice(&seeds);
            dirty.sort_unstable();
        } else {
            dirty_region_into(&corridor.graph, &seeds, t / 2, &mut bfs, &mut dirty);
        }
        // Color the region in left-endpoint order: greedy first-fit along
        // the interval ordering mirrors the Figure-1 sweep, so large
        // patches land on the witness bound instead of tripping the span
        // gate the way slot-id order does.
        color_order.clear();
        color_order.extend_from_slice(&dirty);
        sort_by_left(&mut color_order, &corridor.lefts);
        let bound = (!witness.is_empty()).then(|| witness.len() as u32 - 1);
        let SlotCorridor {
            ref graph,
            ref stations,
            ref colors,
            ref lefts,
            ..
        } = corridor;
        let attempt = inc
            .try_patch_ordered(
                graph,
                &sep,
                colors,
                &dirty,
                &color_order,
                bound,
                &mut ws,
                metrics,
            )
            .or_else(|reason| {
                if reason != FallbackReason::SpanAboveBound {
                    return Err(reason);
                }
                // Stage 2: widen to the t-closure so the seeds' frozen
                // neighborhoods can move too.
                dirty_region_into(graph, &seeds, t, &mut bfs, &mut dirty);
                color_order.clear();
                color_order.extend_from_slice(&dirty);
                sort_by_left(&mut color_order, lefts);
                inc.try_patch_ordered(
                    graph,
                    &sep,
                    colors,
                    &dirty,
                    &color_order,
                    bound,
                    &mut ws,
                    metrics,
                )
            })
            .or_else(|reason| {
                if reason != FallbackReason::SpanAboveBound {
                    return Err(reason);
                }
                // First suspect the bound itself: an inherited clique can
                // go stale-low when arrivals grow a denser clique
                // elsewhere, and no region retry can pass a too-small
                // bound. A resweep costs ~a patch, not a full resolve.
                let mut b = bound.expect("SpanAboveBound implies a bound");
                if !bound_exact {
                    (witness, backups) =
                        slot_clique_witness(graph, stations, lefts, t, &mut wit_dist);
                    swept_in_retry = true;
                    let fresh = witness.len() as u32 - 1;
                    if fresh > b {
                        b = fresh;
                        // The bound rose: the original patch may pass
                        // unchanged against the exact optimum.
                        if let Ok(o) = inc.try_patch_ordered(
                            graph,
                            &sep,
                            colors,
                            &dirty,
                            &color_order,
                            Some(b),
                            &mut ws,
                            metrics,
                        ) {
                            return Ok(o);
                        }
                    }
                }
                // The bound held but the patch overshot it. Two causes,
                // two fixes, both sound (any superset of the t-closure
                // is a valid region):
                // * departures lowered the optimum, so frozen vertices
                //   far from the seeds still wear colors above the fresh
                //   bound — pull every such vertex into the region;
                // * the frozen boundary pinned the greedy above the
                //   optimum — widen the region to radius 2t so the
                //   boundary colors themselves can move.
                // Either retry is churn-sized, an order of magnitude
                // cheaper than the full resolve it usually avoids.
                retry_seeds.clear();
                retry_seeds.extend_from_slice(&seeds);
                for (v, &c) in colors.iter().enumerate() {
                    if c != UNCOLORED && c > b && stations[v].is_some() {
                        retry_seeds.push(v as Vertex);
                    }
                }
                retry_seeds.sort_unstable();
                retry_seeds.dedup();
                let stale_high = retry_seeds.len() > seeds.len();
                let radius = if stale_high { t } else { 2 * t };
                dirty_region_into(graph, &retry_seeds, radius, &mut bfs, &mut dirty);
                color_order.clear();
                color_order.extend_from_slice(&dirty);
                sort_by_left(&mut color_order, lefts);
                inc.try_patch_ordered(
                    graph,
                    &sep,
                    colors,
                    &dirty,
                    &color_order,
                    Some(b),
                    &mut ws,
                    metrics,
                )
                .or_else(|second| {
                    if second != FallbackReason::SpanAboveBound || !stale_high {
                        return Err(second);
                    }
                    dirty_region_into(graph, &retry_seeds, 2 * t, &mut bfs, &mut dirty);
                    color_order.clear();
                    color_order.extend_from_slice(&dirty);
                    sort_by_left(&mut color_order, lefts);
                    inc.try_patch_ordered(
                        graph,
                        &sep,
                        colors,
                        &dirty,
                        &color_order,
                        Some(b),
                        &mut ws,
                        metrics,
                    )
                })
            });
        let outcome = match attempt {
            Ok(outcome) => outcome,
            Err(reason) => inc.fallback_resolve(
                reason,
                dirty.len(),
                |ws, m| {
                    // Full resolve: Figure-1 solve on the live stations,
                    // mapped back to slots. The witness is resweeped after
                    // the outcome lands (rank sweep on the slot graph — far
                    // cheaper than an `interval_clique_witness` here, which
                    // would rebuild the CSR from the representation).
                    let live: Vec<(Vertex, Station)> = stations
                        .iter()
                        .enumerate()
                        .filter_map(|(v, s)| s.map(|s| (v as Vertex, s)))
                        .collect();
                    let rep = IntervalRepresentation::from_floats(
                        &live
                            .iter()
                            .map(|(_, s)| (s.position - s.range, s.position + s.range))
                            .collect::<Vec<_>>(),
                    )
                    .expect("positive ranges yield valid intervals");
                    let out = l1_coloring_ws(&rep, t, ws, m);
                    let mut slot_colors = vec![0u32; stations.len()];
                    for v in 0..live.len() as Vertex {
                        let (slot, _) = live[rep.original_index(v)];
                        slot_colors[slot as usize] = out.labeling.colors()[v as usize];
                    }
                    ws.recycle(out.labeling);
                    Labeling::new(slot_colors)
                },
                &mut ws,
                metrics,
            ),
        };
        if outcome.full_resolve() {
            full_resolves += 1;
            // The gate tripped, so the cached witness under-estimated the
            // new optimum: resweep it so the next epochs can patch again
            // (unless the retry chain already swept this epoch's graph).
            if !swept_in_retry {
                (witness, backups) = slot_clique_witness(
                    &corridor.graph,
                    &corridor.stations,
                    &corridor.lefts,
                    t,
                    &mut wit_dist,
                );
            }
        }
        epoch_recolored.push(outcome.recolored.min(corridor.live()));
        epoch_frozen.push(outcome.frozen);

        // Commit colors; account span and churn against the live-color
        // histogram so patch epochs do O(|region|) bookkeeping instead of
        // an O(n) rescan. A patch changes colors only inside `dirty`; a
        // full resolve may move anything, so it rebuilds the histogram.
        // Seed slots were parked at UNCOLORED when claimed, so that test
        // alone separates survivors from this epoch's arrivals.
        let mut retunes = 0usize;
        let survivors = fleet.len() - seeds.len();
        if outcome.full_resolve() {
            color_counts.clear();
            for (v, &c) in outcome.labeling.colors().iter().enumerate() {
                if corridor.stations[v].is_none() {
                    continue;
                }
                bump_color(&mut color_counts, c);
                let was = corridor.colors[v];
                if was != UNCOLORED && was != c {
                    retunes += 1;
                }
            }
        } else {
            let new_colors = outcome.labeling.colors();
            for &v in &dirty {
                let c = new_colors[v as usize];
                let was = corridor.colors[v as usize];
                if was != UNCOLORED {
                    color_counts[was as usize] -= 1;
                    if was != c {
                        retunes += 1;
                    }
                }
                bump_color(&mut color_counts, c);
            }
        }
        while color_counts.last() == Some(&0) {
            color_counts.pop();
        }
        let span = color_counts.len().saturating_sub(1) as u32;
        let recycled = std::mem::replace(&mut corridor.colors, outcome.labeling.into_colors());
        ws.recycle_colors(recycled);
        #[cfg(debug_assertions)]
        debug_check_committed_coloring(&corridor, t, span);
        let solve_ns = u64::try_from(solve_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        epoch_hist.record(solve_ns);
        epoch_solve_ns.push(solve_ns);
        metrics.observe_ns(Hist::SolverSolve, solve_ns);
        max_span = max_span.max(span);
        spans.push(span as f64);
        epoch_spans.push(span);
        total_retunes += retunes;
        churns.push(if survivors == 0 {
            0.0
        } else {
            retunes as f64 / survivors as f64
        });
    }

    ChurnReport {
        epochs,
        mean_span: mean(&spans),
        max_span,
        mean_churn: mean(&churns),
        total_retunes,
        mean_stations: mean(&sizes),
        epoch_solve: epoch_hist.snapshot(),
        epoch_solve_ns,
        epoch_spans,
        epoch_recolored,
        epoch_frozen,
        full_resolves,
    }
}

/// Debug-build oracle: the incrementally patched slot graph must equal the
/// from-scratch conflict graph of the live stations. Quadratic, so capped;
/// every debug run of the sim (i.e. every test) gets graph-wiring coverage
/// the delta-layer proptests can't give (they trust the sim's deltas).
#[cfg(debug_assertions)]
fn debug_check_graph_parity(corridor: &SlotCorridor) {
    let n = corridor.stations.len();
    if n > 2048 {
        return;
    }
    for a in 0..n {
        let Some(sa) = corridor.stations[a] else {
            continue;
        };
        for b in (a + 1)..n {
            let Some(sb) = corridor.stations[b] else {
                continue;
            };
            let expected = SlotCorridor::conflicts(sa, sb);
            let got = corridor.graph.neighbors(a as Vertex).contains(&(b as Vertex));
            assert_eq!(
                expected, got,
                "slot graph drifted from the conflict predicate at ({a}, {b})"
            );
        }
    }
}

/// Debug-build oracle: the committed per-epoch coloring must be a valid
/// `L(1,...,1)` assignment (distinct colors within distance `t`) and the
/// histogram-derived `span` must equal the true max live color. This is
/// what catches an unsound dirty region: a patch can pass the solver's
/// region-local checks and the span gate while leaving two *frozen*
/// vertices in conflict — only a whole-graph sweep sees that.
#[cfg(debug_assertions)]
fn debug_check_committed_coloring(corridor: &SlotCorridor, t: u32, span: u32) {
    use std::collections::VecDeque;
    let n = corridor.stations.len();
    let actual = (0..n)
        .filter(|&v| corridor.stations[v].is_some())
        .map(|v| corridor.colors[v])
        .max()
        .unwrap_or(0);
    assert_eq!(span, actual, "histogram span drifted from the max live color");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    let mut ball = Vec::new();
    for v in 0..n as Vertex {
        if corridor.stations[v as usize].is_none() {
            continue;
        }
        dist[v as usize] = 0;
        queue.push_back(v);
        ball.push(v);
        while let Some(x) = queue.pop_front() {
            if dist[x as usize] >= t {
                continue;
            }
            for &y in corridor.graph.neighbors(x) {
                if dist[y as usize] == u32::MAX {
                    dist[y as usize] = dist[x as usize] + 1;
                    queue.push_back(y);
                    ball.push(y);
                }
            }
        }
        for &y in &ball {
            assert!(
                y == v || corridor.colors[y as usize] != corridor.colors[v as usize],
                "slots {v} and {y} share color {} at distance <= {t}",
                corridor.colors[v as usize]
            );
            dist[y as usize] = u32::MAX;
        }
        ball.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{simulate_corridor, Policy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ssg_telemetry::Counter;

    fn cfg(initial: usize, epochs: usize, p_depart: f64, arrivals_max: usize) -> DynamicsConfig {
        DynamicsConfig::default()
            .initial(initial)
            .epochs(epochs)
            .p_depart(p_depart)
            .arrivals_max(arrivals_max)
            .corridor_len(60.0)
            .range_min(1.0)
            .range_max(3.0)
            .t(2)
    }

    /// The heavyweight end-to-end guarantee: under the same seed, every
    /// epoch of the incremental run has exactly the span the from-scratch
    /// optimal run produces.
    #[test]
    fn per_epoch_spans_match_full_simulation() {
        // Dense corridor: big overlapping balls, regions rub against the
        // fallback threshold. Sparse corridor (the `ssg churn --incremental`
        // demo config): tiny cliques, where an arrival bridging two frozen
        // survivors once slipped past a seeds-only dirty region as a
        // span-invisible conflict — the sparse/seed-42 case is the
        // regression pin for that.
        let sparse = DynamicsConfig::default()
            .initial(100)
            .p_depart(0.04)
            .arrivals_max(4)
            .corridor_len(400.0)
            .range_min(1.0)
            .range_max(2.0)
            .t(2);
        for (c, seeds) in [
            (cfg(40, 25, 0.1, 6), [140u64, 141, 142]),
            (sparse.epochs(25), [42u64, 141, 142]),
        ] {
            for seed in seeds {
                let mut rng = StdRng::seed_from_u64(seed);
                let full = simulate_corridor(c, Policy::OptimalL1, &mut rng);
                let mut rng = StdRng::seed_from_u64(seed);
                let inc = simulate_corridor_incremental(c, &mut rng);
                assert_eq!(inc.epoch_spans, full.epoch_spans, "seed {seed}");
                assert_eq!(inc.mean_stations, full.mean_stations, "seed {seed}");
                assert_eq!(inc.max_span, full.max_span, "seed {seed}");
            }
        }
    }

    /// Report bookkeeping: one entry per epoch everywhere, churn in range.
    #[test]
    fn report_fields_are_coherent() {
        let c = cfg(30, 20, 0.15, 5);
        let mut rng = StdRng::seed_from_u64(143);
        let rep = simulate_corridor_incremental(c, &mut rng);
        assert_eq!(rep.epochs, 20);
        assert!(rep.mean_span > 0.0);
        assert!((0.0..=1.0).contains(&rep.mean_churn));
        assert_eq!(rep.epoch_spans.len(), 20);
        assert_eq!(rep.epoch_recolored.len(), 20);
        assert_eq!(rep.epoch_frozen.len(), 20);
        assert_eq!(rep.epoch_solve.count(), 20);
        assert!(rep.full_resolves <= rep.epochs);
    }

    /// At low churn most epochs patch a small region: recoloring touches
    /// far fewer stations than freezing spares, and full resolves are the
    /// exception, not the rule.
    #[test]
    fn low_churn_mostly_freezes() {
        // Sparse corridor: distance-2 balls stay small, so regions stay
        // under the fallback threshold and patches dominate.
        let c = DynamicsConfig::default()
            .initial(120)
            .epochs(30)
            .p_depart(0.02)
            .arrivals_max(2)
            .corridor_len(600.0)
            .range_min(1.0)
            .range_max(2.0)
            .t(2);
        let mut rng = StdRng::seed_from_u64(144);
        let m = Metrics::enabled();
        let rep = simulate_corridor_incremental_with(c, &mut rng, &m);
        let recolored: usize = rep.epoch_recolored.iter().sum();
        let frozen: usize = rep.epoch_frozen.iter().sum();
        assert!(
            frozen > recolored,
            "expected mostly-frozen epochs: frozen={frozen} recolored={recolored}"
        );
        assert!(
            rep.full_resolves < rep.epochs,
            "full resolves should be the exception: {}/{}",
            rep.full_resolves,
            rep.epochs
        );
        let snap = m.snapshot();
        assert!(snap.counter(Counter::DeltaApplied) >= rep.epochs as u64);
        assert_eq!(
            snap.counter(Counter::RegionRecolors) + snap.counter(Counter::FullResolves),
            rep.epochs as u64
        );
        assert_eq!(
            snap.hist(Hist::RegionSize).count(),
            rep.epochs as u64,
            "one region observation per epoch"
        );
    }

    /// Dirty-vertex totals scale with churn pressure, not fleet size.
    #[test]
    fn dirty_vertices_scale_with_churn() {
        let quiet = Metrics::enabled();
        let mut rng = StdRng::seed_from_u64(145);
        simulate_corridor_incremental_with(cfg(100, 20, 0.01, 1), &mut rng, &quiet);
        let busy = Metrics::enabled();
        let mut rng = StdRng::seed_from_u64(145);
        simulate_corridor_incremental_with(cfg(100, 20, 0.25, 12), &mut rng, &busy);
        let q = quiet.snapshot().counter(Counter::DirtyVertices);
        let b = busy.snapshot().counter(Counter::DirtyVertices);
        assert!(
            b > q,
            "higher churn must dirty more vertices: quiet={q} busy={b}"
        );
    }

    /// All-departure epochs (no survivors) stay coherent through slot
    /// recycling.
    #[test]
    fn total_turnover_is_survived() {
        let c = DynamicsConfig::default()
            .initial(5)
            .epochs(8)
            .p_depart(1.0)
            .arrivals_max(3)
            .corridor_len(10.0)
            .range_min(1.0)
            .range_max(2.0)
            .t(1);
        let mut rng = StdRng::seed_from_u64(146);
        let rep = simulate_corridor_incremental(c, &mut rng);
        assert_eq!(rep.epochs, 8);
        assert_eq!(rep.total_retunes, 0, "no survivors => no retunes");
        assert!(rep.mean_stations >= 1.0);
    }

}
