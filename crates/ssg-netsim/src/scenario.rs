//! Synthetic wireless-network scenarios shaped like the paper's motivating
//! domain (§1): stations whose hearing ranges overlap must receive
//! well-separated channels.
//!
//! Three families:
//!
//! * [`CorridorNetwork`] — stations along a highway/corridor with
//!   heterogeneous ranges; the conflict graph is an **interval graph**.
//! * [`VehicularNetwork`] — equal-power transmitters along a road; the
//!   conflict graph is a **unit interval graph**.
//! * [`BackboneNetwork`] — a hierarchical (tree) backbone, e.g. a sensor
//!   network aggregation tree.
//!
//! Each scenario knows how to run the paper's algorithm for its class, the
//! greedy baseline, and to audit the result against the interference model.

use rand::Rng;
use rand_distr_exp::sample_exp;
use ssg_graph::Graph;
use ssg_intervals::{IntervalRepresentation, UnitIntervalRepresentation};
use ssg_labeling::baseline::greedy_bfs_order;
use ssg_labeling::interval::{approx_delta1_coloring, l1_coloring};
use ssg_labeling::tree::{self, to_original_ids};
use ssg_labeling::unit_interval::l_delta1_delta2_coloring;
use ssg_labeling::{verify_labeling, Labeling, SeparationVector};
use ssg_tree::RootedTree;

/// Tiny inline exponential sampler (keeps `rand` the only RNG dependency).
mod rand_distr_exp {
    use rand::Rng;

    /// Samples `Exp(1/mean)` by inversion.
    pub fn sample_exp<R: Rng>(mean: f64, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }
}

/// A radio station on the corridor line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Station {
    /// Position along the corridor.
    pub position: f64,
    /// Hearing radius: stations hear each other when their
    /// `[position - range, position + range]` footprints overlap.
    pub range: f64,
}

/// What an assignment run produced, ready for experiment tables.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentReport {
    /// Which algorithm produced it.
    pub algorithm: String,
    /// Number of stations.
    pub n: usize,
    /// Edges in the conflict graph.
    pub conflicts: usize,
    /// Largest channel used (the span `λ`).
    pub span: u32,
    /// Channels actually assigned.
    pub distinct_channels: usize,
    /// A class-specific lower bound on the optimal span (clique-based).
    pub lower_bound: u32,
    /// Whether the full interference audit passed.
    pub verified: bool,
}

impl AssignmentReport {
    fn build(
        algorithm: &str,
        g: &Graph,
        sep: &SeparationVector,
        labeling: &Labeling,
        lower_bound: u32,
    ) -> Self {
        AssignmentReport {
            algorithm: algorithm.to_string(),
            n: g.num_vertices(),
            conflicts: g.num_edges(),
            span: labeling.span(),
            distinct_channels: labeling.distinct_colors(),
            lower_bound,
            verified: verify_labeling(g, sep, labeling.colors()).is_ok(),
        }
    }
}

impl AssignmentReport {
    /// CSV header matching [`AssignmentReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "algorithm,n,conflicts,span,distinct_channels,lower_bound,verified"
    }

    /// One CSV row (no trailing newline).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.algorithm,
            self.n,
            self.conflicts,
            self.span,
            self.distinct_channels,
            self.lower_bound,
            self.verified
        )
    }
}

/// Corridor of stations with heterogeneous ranges (interval conflict graph).
#[derive(Debug, Clone)]
pub struct CorridorNetwork {
    stations: Vec<Station>,
    rep: IntervalRepresentation,
    graph: Graph,
}

impl CorridorNetwork {
    /// Generates `n` stations with exponential position gaps (mean
    /// `mean_gap`) and ranges uniform in `[range_min, range_max]`.
    pub fn generate<R: Rng>(
        n: usize,
        mean_gap: f64,
        range_min: f64,
        range_max: f64,
        rng: &mut R,
    ) -> Self {
        assert!(mean_gap > 0.0 && range_min > 0.0 && range_max >= range_min);
        let mut x = 0.0f64;
        let stations: Vec<Station> = (0..n)
            .map(|_| {
                x += sample_exp(mean_gap, rng);
                Station {
                    position: x,
                    range: rng.gen_range(range_min..=range_max),
                }
            })
            .collect();
        Self::from_stations(stations)
    }

    /// Builds the network from explicit stations.
    pub fn from_stations(stations: Vec<Station>) -> Self {
        let intervals: Vec<(f64, f64)> = stations
            .iter()
            .map(|s| (s.position - s.range, s.position + s.range))
            .collect();
        let rep = IntervalRepresentation::from_floats(&intervals)
            .expect("positive ranges yield valid intervals");
        let graph = rep.to_graph();
        CorridorNetwork {
            stations,
            rep,
            graph,
        }
    }

    /// The stations, in generation order.
    pub fn stations(&self) -> &[Station] {
        &self.stations
    }

    /// The interval representation (vertices ordered by left endpoint).
    pub fn representation(&self) -> &IntervalRepresentation {
        &self.rep
    }

    /// The conflict graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Optimal `L(1,...,1)` assignment (paper Figure 1).
    pub fn assign_l1(&self, t: u32) -> AssignmentReport {
        let out = l1_coloring(&self.rep, t);
        let sep = SeparationVector::all_ones(t);
        AssignmentReport::build(
            "interval-l1",
            &self.graph,
            &sep,
            &out.labeling,
            out.lambda_star,
        )
    }

    /// Approximate `L(δ1,1,...,1)` assignment (paper §3.2).
    pub fn assign_delta1(&self, t: u32, delta1: u32) -> AssignmentReport {
        let out = approx_delta1_coloring(&self.rep, t, delta1);
        let sep = SeparationVector::delta1_then_ones(delta1, t).expect("valid separations");
        let lower = (delta1 * out.lambda_1).max(out.lambda_t);
        AssignmentReport::build(
            "interval-approx-d1",
            &self.graph,
            &sep,
            &out.labeling,
            lower,
        )
    }

    /// Greedy BFS-order baseline for the same separation vector.
    pub fn assign_greedy(&self, sep: &SeparationVector) -> AssignmentReport {
        let lab = greedy_bfs_order(&self.graph, sep);
        let lower = l1_coloring(&self.rep, sep.t()).lambda_star;
        AssignmentReport::build("greedy-bfs", &self.graph, sep, &lab, lower)
    }
}

/// Vehicles with equal radio power (unit interval conflict graph).
#[derive(Debug, Clone)]
pub struct VehicularNetwork {
    rep: UnitIntervalRepresentation,
    graph: Graph,
}

impl VehicularNetwork {
    /// `n` vehicles whose successive gaps are uniform in `(0, max_gap]`
    /// hearing-range units, `max_gap < 1` keeping the platoon connected.
    pub fn generate<R: Rng>(n: usize, max_gap: f64, rng: &mut R) -> Self {
        let rep = ssg_intervals::gen::random_connected_unit_intervals(n, max_gap, rng);
        let graph = rep.to_graph();
        VehicularNetwork { rep, graph }
    }

    /// A dense platoon where every vehicle conflicts with its `k` closest
    /// predecessors (clique number exactly `k + 1`).
    pub fn platoon<R: Rng>(n: usize, k: usize, rng: &mut R) -> Self {
        let rep = ssg_intervals::gen::corridor_unit_intervals(n, k, rng);
        let graph = rep.to_graph();
        VehicularNetwork { rep, graph }
    }

    /// The unit interval representation.
    pub fn representation(&self) -> &UnitIntervalRepresentation {
        &self.rep
    }

    /// The conflict graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// `L(δ1,δ2)` assignment (paper Figure 2 / Theorem 3, corrected).
    pub fn assign_l_delta(&self, delta1: u32, delta2: u32) -> AssignmentReport {
        let out = l_delta1_delta2_coloring(&self.rep, delta1, delta2);
        let sep = SeparationVector::two(delta1, delta2).expect("valid separations");
        let lambda2 = l1_coloring(self.rep.as_interval(), 2).lambda_star;
        let lower = (delta1 * out.lambda_1).max(delta2 * lambda2);
        AssignmentReport::build("unit-l-d1d2", &self.graph, &sep, &out.labeling, lower)
    }

    /// Greedy baseline.
    pub fn assign_greedy(&self, delta1: u32, delta2: u32) -> AssignmentReport {
        let sep = SeparationVector::two(delta1, delta2).expect("valid separations");
        let lab = greedy_bfs_order(&self.graph, &sep);
        let lambda2 = l1_coloring(self.rep.as_interval(), 2).lambda_star;
        let lower = (delta1 * self.rep.lambda1() as u32).max(delta2 * lambda2);
        AssignmentReport::build("greedy-bfs", &self.graph, &sep, &lab, lower)
    }
}

/// A hierarchical backbone (tree conflict graph).
#[derive(Debug, Clone)]
pub struct BackboneNetwork {
    graph: Graph,
    tree: RootedTree,
}

impl BackboneNetwork {
    /// Random backbone: a degree-bounded random tree rooted at the gateway
    /// (vertex 0).
    pub fn generate<R: Rng>(n: usize, max_degree: usize, rng: &mut R) -> Self {
        let graph = ssg_graph::generators::random_bounded_degree_tree(n, max_degree, rng);
        let tree = RootedTree::bfs_canonical(&graph, 0).expect("generated graph is a tree");
        BackboneNetwork { graph, tree }
    }

    /// The underlying tree (BFS-canonical).
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// The conflict graph, in the original vertex numbering.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Optimal `L(1,...,1)` assignment (paper Figure 5).
    pub fn assign_l1(&self, t: u32) -> AssignmentReport {
        let out = tree::l1_coloring(&self.tree, t);
        let lab = to_original_ids(&self.tree, &out.labeling);
        let sep = SeparationVector::all_ones(t);
        AssignmentReport::build("tree-l1", &self.graph, &sep, &lab, out.lambda_star)
    }

    /// Approximate `L(δ1,1,...,1)` assignment (paper §4.2).
    pub fn assign_delta1(&self, t: u32, delta1: u32) -> AssignmentReport {
        let out = tree::approx_delta1_coloring(&self.tree, t, delta1);
        let lab = to_original_ids(&self.tree, &out.labeling);
        let sep = SeparationVector::delta1_then_ones(delta1, t).expect("valid separations");
        let lower = delta1.max(out.lambda_star); // λ*_{T,1} = 1 on trees
        AssignmentReport::build("tree-approx-d1", &self.graph, &sep, &lab, lower)
    }

    /// Greedy baseline.
    pub fn assign_greedy(&self, sep: &SeparationVector) -> AssignmentReport {
        let lab = greedy_bfs_order(&self.graph, sep);
        let lower = tree::l1_coloring(&self.tree, sep.t()).lambda_star;
        AssignmentReport::build("greedy-bfs", &self.graph, sep, &lab, lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corridor_graph_round_trips_through_builder() {
        // The conflict graph cached by `from_stations` comes out of the
        // interval sweep's `GraphBuilder`; rebuilding it from its own CSR
        // neighbor slices must reproduce it exactly, and the flat layout
        // must report a real arena footprint for churn accounting.
        let mut rng = StdRng::seed_from_u64(95);
        let net = CorridorNetwork::generate(40, 1.0, 1.0, 4.0, &mut rng);
        let g = net.graph();
        let mut builder = ssg_graph::GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                if v < w {
                    builder.add_edge(v, w);
                }
            }
        }
        let rebuilt = builder.build().unwrap();
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(rebuilt.neighbors(v), g.neighbors(v), "v={v}");
        }
        assert!(g.capacity_footprint() >= g.num_vertices() + 2 * g.num_edges());
    }

    #[test]
    fn corridor_assignments_verify_and_bound() {
        let mut rng = StdRng::seed_from_u64(90);
        let net = CorridorNetwork::generate(80, 1.0, 1.0, 4.0, &mut rng);
        assert_eq!(net.stations().len(), 80);
        for t in 1..=3u32 {
            let r = net.assign_l1(t);
            assert!(r.verified, "t={t}");
            assert_eq!(r.span, r.lower_bound, "optimal algorithm meets its bound");
            let r = net.assign_delta1(t, 3);
            assert!(r.verified);
            assert!(r.span as u64 <= 3 * r.lower_bound.max(1) as u64);
            let g = net.assign_greedy(&SeparationVector::all_ones(t));
            assert!(g.verified);
            assert!(g.span >= r.lower_bound.min(g.span)); // sanity
        }
    }

    #[test]
    fn vehicular_assignments() {
        let mut rng = StdRng::seed_from_u64(91);
        let net = VehicularNetwork::generate(60, 0.5, &mut rng);
        for (d1, d2) in [(2, 1), (3, 1), (3, 2)] {
            let r = net.assign_l_delta(d1, d2);
            assert!(r.verified, "d=({d1},{d2})");
            assert!(r.span as u64 <= 3 * r.lower_bound.max(1) as u64);
            let g = net.assign_greedy(d1, d2);
            assert!(g.verified);
        }
        let platoon = VehicularNetwork::platoon(50, 4, &mut rng);
        assert_eq!(platoon.representation().max_clique(), 5);
        let r = platoon.assign_l_delta(5, 1);
        assert!(r.verified);
    }

    #[test]
    fn backbone_assignments() {
        let mut rng = StdRng::seed_from_u64(92);
        let net = BackboneNetwork::generate(100, 4, &mut rng);
        for t in 1..=4u32 {
            let r = net.assign_l1(t);
            assert!(r.verified, "t={t}");
            assert_eq!(r.span, r.lower_bound);
            let a = net.assign_delta1(t, 4);
            assert!(a.verified);
            let g = net.assign_greedy(&SeparationVector::all_ones(t));
            assert!(g.verified);
            assert!(g.span >= r.span, "greedy cannot beat the optimum");
        }
    }

    #[test]
    fn report_csv_roundtrip() {
        let mut rng = StdRng::seed_from_u64(94);
        let net = BackboneNetwork::generate(15, 3, &mut rng);
        let r = net.assign_l1(2);
        let row = r.to_csv_row();
        assert_eq!(
            row.split(',').count(),
            AssignmentReport::csv_header().split(',').count()
        );
        assert!(row.starts_with("tree-l1,15,14,"));
    }

    #[test]
    fn reports_carry_metadata() {
        let mut rng = StdRng::seed_from_u64(93);
        let net = BackboneNetwork::generate(20, 3, &mut rng);
        let r = net.assign_l1(2);
        assert_eq!(r.n, 20);
        assert_eq!(r.conflicts, 19);
        assert_eq!(r.algorithm, "tree-l1");
        assert!(r.distinct_channels <= r.span as usize + 1);
    }
}
