//! Dynamic channel assignment: stations arrive and depart over time, the
//! assignment is recomputed each epoch, and we measure *churn* — how many
//! surviving stations had to retune.
//!
//! The paper's algorithms are offline; this module quantifies the practical
//! cost of rerunning them as the workload drifts, compared with the greedy
//! baseline. (High churn is the classic argument for greedy/incremental
//! schemes even when an optimal offline algorithm exists.)

use crate::scenario::{CorridorNetwork, Station};
use rand::Rng;
use ssg_labeling::baseline::greedy_bfs_order_ws;
use ssg_labeling::interval::l1_coloring_ws;
use ssg_labeling::{SeparationVector, Workspace};
use ssg_telemetry::hist::{HistSnapshot, Histogram};
use ssg_telemetry::{Hist, Metrics};
use std::collections::HashMap;
use std::time::Instant;

/// Which assignment policy the simulation reruns each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Optimal `L(1,...,1)` via Figure 1, rerun from scratch.
    OptimalL1,
    /// Greedy BFS first-fit, rerun from scratch.
    Greedy,
}

/// Aggregate result of a dynamic simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Epochs simulated.
    pub epochs: usize,
    /// Mean span across epochs.
    pub mean_span: f64,
    /// Largest span in any epoch.
    pub max_span: u32,
    /// Mean fraction of *surviving* stations whose channel changed between
    /// consecutive epochs.
    pub mean_churn: f64,
    /// Total number of retunes across the run.
    pub total_retunes: usize,
    /// Mean station count per epoch.
    pub mean_stations: f64,
    /// Distribution of per-epoch solve times in nanoseconds (one
    /// observation per epoch, covering conflict-graph rebuild/patch plus
    /// the solve), for tail-latency reporting: `ssg churn` prints its
    /// p50/p90/p99/max.
    pub epoch_solve: HistSnapshot,
    /// Exact per-epoch solve times in nanoseconds, in epoch order — the
    /// unbucketed observations behind [`ChurnReport::epoch_solve`], for
    /// precise median comparisons between policies.
    pub epoch_solve_ns: Vec<u64>,
    /// Span of each epoch's assignment, in epoch order.
    pub epoch_spans: Vec<u32>,
    /// Stations whose channel was (re)computed in each epoch. A
    /// from-scratch policy recomputes everything; the incremental path
    /// only the dirty region.
    pub epoch_recolored: Vec<usize>,
    /// Stations whose channel was frozen (carried over unexamined) in each
    /// epoch. Always zero for from-scratch policies.
    pub epoch_frozen: Vec<usize>,
    /// Epochs that ran a from-scratch resolve. Equals `epochs` for the
    /// from-scratch policies; for the incremental path it counts region
    /// patches that were rejected or unprovable.
    pub full_resolves: usize,
}

/// Parameters of a dynamic corridor simulation.
///
/// Non-exhaustive builder-style config: start from [`DynamicsConfig::default`]
/// and chain the field-named setters, so adding a parameter later is not a
/// breaking change for downstream callers.
///
/// ```
/// use ssg_netsim::dynamics::DynamicsConfig;
///
/// let cfg = DynamicsConfig::default().initial(30).epochs(12).p_depart(0.15);
/// assert_eq!(cfg.initial, 30);
/// assert_eq!(cfg.range_min, DynamicsConfig::default().range_min);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsConfig {
    /// Stations at epoch 0.
    pub initial: usize,
    /// Epochs to simulate.
    pub epochs: usize,
    /// Per-epoch departure probability of each station.
    pub p_depart: f64,
    /// Per-epoch arrivals are uniform in `0..=arrivals_max`.
    pub arrivals_max: usize,
    /// Length of the corridor positions are drawn from.
    pub corridor_len: f64,
    /// Minimum hearing radius.
    pub range_min: f64,
    /// Maximum hearing radius.
    pub range_max: f64,
    /// Interference radius for the `L(1,...,1)` separation.
    pub t: u32,
}

impl Default for DynamicsConfig {
    /// A mid-sized corridor: 40 stations, 20 epochs, 10% churn pressure.
    fn default() -> Self {
        DynamicsConfig {
            initial: 40,
            epochs: 20,
            p_depart: 0.1,
            arrivals_max: 6,
            corridor_len: 30.0,
            range_min: 1.0,
            range_max: 3.0,
            t: 2,
        }
    }
}

impl DynamicsConfig {
    /// Sets the epoch-0 station count.
    #[must_use]
    pub fn initial(mut self, initial: usize) -> Self {
        self.initial = initial;
        self
    }

    /// Sets the number of epochs to simulate.
    #[must_use]
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the per-epoch departure probability.
    #[must_use]
    pub fn p_depart(mut self, p_depart: f64) -> Self {
        self.p_depart = p_depart;
        self
    }

    /// Sets the per-epoch arrival cap.
    #[must_use]
    pub fn arrivals_max(mut self, arrivals_max: usize) -> Self {
        self.arrivals_max = arrivals_max;
        self
    }

    /// Sets the corridor length.
    #[must_use]
    pub fn corridor_len(mut self, corridor_len: f64) -> Self {
        self.corridor_len = corridor_len;
        self
    }

    /// Sets the minimum hearing radius.
    #[must_use]
    pub fn range_min(mut self, range_min: f64) -> Self {
        self.range_min = range_min;
        self
    }

    /// Sets the maximum hearing radius.
    #[must_use]
    pub fn range_max(mut self, range_max: f64) -> Self {
        self.range_max = range_max;
        self
    }

    /// Sets the interference radius `t`.
    #[must_use]
    pub fn t(mut self, t: u32) -> Self {
        self.t = t;
        self
    }
}

/// Simulates `epochs` steps of a corridor in which, per epoch, each station
/// departs with probability `p_depart` and up to `arrivals_max` new
/// stations appear at uniform positions. Channels are recomputed from
/// scratch each epoch with `policy` at interference radius `t` — "from
/// scratch" meaning the *assignment*, not the allocations: one warm
/// [`Workspace`] is held across all epochs, so every epoch after the first
/// solves on recycled arenas.
pub fn simulate_corridor<R: Rng>(cfg: DynamicsConfig, policy: Policy, rng: &mut R) -> ChurnReport {
    simulate_corridor_with(cfg, policy, rng, &Metrics::disabled())
}

/// [`simulate_corridor`] with a telemetry handle: each epoch runs under a
/// `netsim.epoch` span, and every epoch's solve time is rolled into both
/// the returned report's [`ChurnReport::epoch_solve`] histogram and the
/// handle's [`Hist::SolverSolve`] distribution.
pub fn simulate_corridor_with<R: Rng>(
    cfg: DynamicsConfig,
    policy: Policy,
    rng: &mut R,
    metrics: &Metrics,
) -> ChurnReport {
    let DynamicsConfig {
        initial,
        epochs,
        p_depart,
        arrivals_max,
        corridor_len,
        range_min,
        range_max,
        t,
    } = cfg;
    assert!((0.0..=1.0).contains(&p_depart));
    assert!(corridor_len > 0.0 && range_min > 0.0 && range_max >= range_min);
    let mut next_id: u64 = 0;
    let mut new_station = |rng: &mut R| {
        let id = next_id;
        next_id += 1;
        (
            id,
            Station {
                position: rng.gen_range(0.0..corridor_len),
                range: rng.gen_range(range_min..=range_max),
            },
        )
    };
    let mut fleet: Vec<(u64, Station)> = (0..initial).map(|_| new_station(rng)).collect();
    let mut ws = Workspace::new();
    let sep = SeparationVector::all_ones(t);
    let mut prev: HashMap<u64, u32> = HashMap::new();
    let mut spans = Vec::with_capacity(epochs);
    let mut epoch_spans = Vec::with_capacity(epochs);
    let mut epoch_recolored = Vec::with_capacity(epochs);
    let mut churns = Vec::with_capacity(epochs);
    let mut sizes = Vec::with_capacity(epochs);
    let mut total_retunes = 0usize;
    let mut max_span = 0u32;
    let epoch_hist = Histogram::new();
    let mut epoch_solve_ns = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let _epoch_span = metrics.span("netsim.epoch");
        // Departures and arrivals.
        fleet.retain(|_| !rng.gen_bool(p_depart));
        let arrivals = rng.gen_range(0..=arrivals_max);
        for _ in 0..arrivals {
            fleet.push(new_station(rng));
        }
        if fleet.is_empty() {
            fleet.push(new_station(rng));
        }
        sizes.push(fleet.len() as f64);
        // Recompute the assignment. The timer covers the conflict-graph
        // rebuild too — that cost is exactly what the incremental path
        // amortizes, so excluding it would bias the comparison.
        let solve_start = Instant::now();
        let net = CorridorNetwork::from_stations(fleet.iter().map(|&(_, s)| s).collect());
        let channels = match policy {
            Policy::OptimalL1 => net.l1_channels_with(t, &mut ws, metrics),
            Policy::Greedy => net.greedy_channels_with(&sep, &mut ws, metrics),
        };
        let solve_ns = u64::try_from(solve_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        epoch_hist.record(solve_ns);
        epoch_solve_ns.push(solve_ns);
        metrics.observe_ns(Hist::SolverSolve, solve_ns);
        let span = channels.iter().copied().max().unwrap_or(0);
        max_span = max_span.max(span);
        spans.push(span as f64);
        epoch_spans.push(span);
        epoch_recolored.push(fleet.len());
        // Churn among survivors.
        let mut current: HashMap<u64, u32> = HashMap::with_capacity(fleet.len());
        for (i, &(id, _)) in fleet.iter().enumerate() {
            current.insert(id, channels[i]);
        }
        let survivors: Vec<u64> = current
            .keys()
            .copied()
            .filter(|id| prev.contains_key(id))
            .collect();
        let retunes = survivors
            .iter()
            .filter(|id| prev[id] != current[id])
            .count();
        total_retunes += retunes;
        churns.push(if survivors.is_empty() {
            0.0
        } else {
            retunes as f64 / survivors.len() as f64
        });
        prev = current;
    }
    ChurnReport {
        epochs,
        mean_span: mean(&spans),
        max_span,
        mean_churn: mean(&churns),
        total_retunes,
        mean_stations: mean(&sizes),
        epoch_solve: epoch_hist.snapshot(),
        epoch_solve_ns,
        epoch_spans,
        epoch_recolored,
        epoch_frozen: vec![0; epochs],
        full_resolves: epochs,
    }
}

pub(crate) fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

impl CorridorNetwork {
    /// Channels in **station order** (the order the network was built
    /// from), for the optimal `L(1,...,1)` assignment.
    pub fn l1_channels(&self, t: u32) -> Vec<u32> {
        self.l1_channels_ws(t, &mut Workspace::new())
    }

    /// [`l1_channels`](Self::l1_channels) on a caller-held [`Workspace`],
    /// for repeated solves (the dynamics epoch loop) on warm arenas.
    pub fn l1_channels_ws(&self, t: u32, ws: &mut Workspace) -> Vec<u32> {
        self.l1_channels_with(t, ws, &Metrics::disabled())
    }

    /// [`l1_channels_ws`](Self::l1_channels_ws) with a telemetry handle, so
    /// the solver's phase spans land in the caller's trace.
    pub fn l1_channels_with(&self, t: u32, ws: &mut Workspace, metrics: &Metrics) -> Vec<u32> {
        let out = l1_coloring_ws(self.representation(), t, ws, metrics);
        let channels = self.to_station_order(out.labeling.colors());
        ws.recycle(out.labeling);
        channels
    }

    /// Channels in station order for the greedy baseline.
    pub fn greedy_channels(&self, sep: &SeparationVector) -> Vec<u32> {
        self.greedy_channels_ws(sep, &mut Workspace::new())
    }

    /// [`greedy_channels`](Self::greedy_channels) on a caller-held
    /// [`Workspace`].
    pub fn greedy_channels_ws(&self, sep: &SeparationVector, ws: &mut Workspace) -> Vec<u32> {
        self.greedy_channels_with(sep, ws, &Metrics::disabled())
    }

    /// [`greedy_channels_ws`](Self::greedy_channels_ws) with a telemetry
    /// handle, so the solver's phase spans land in the caller's trace.
    pub fn greedy_channels_with(
        &self,
        sep: &SeparationVector,
        ws: &mut Workspace,
        metrics: &Metrics,
    ) -> Vec<u32> {
        let lab = greedy_bfs_order_ws(self.graph(), sep, ws, metrics);
        let channels = self.to_station_order(lab.colors());
        ws.recycle(lab);
        channels
    }

    /// Maps representation-ordered colors back to station order.
    fn to_station_order(&self, colors: &[u32]) -> Vec<u32> {
        let rep = self.representation();
        let mut out = vec![0u32; colors.len()];
        for v in 0..colors.len() as u32 {
            out[rep.original_index(v)] = colors[v as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(
        initial: usize,
        epochs: usize,
        p_depart: f64,
        arrivals_max: usize,
        corridor_len: f64,
        t: u32,
    ) -> DynamicsConfig {
        DynamicsConfig::default()
            .initial(initial)
            .epochs(epochs)
            .p_depart(p_depart)
            .arrivals_max(arrivals_max)
            .corridor_len(corridor_len)
            .range_min(1.0)
            .range_max(3.0)
            .t(t)
    }

    #[test]
    fn station_order_channels_are_consistent() {
        let mut rng = StdRng::seed_from_u64(130);
        let net = CorridorNetwork::generate(50, 1.0, 1.0, 4.0, &mut rng);
        let ch = net.l1_channels(2);
        assert_eq!(ch.len(), 50);
        // Station-order channels must verify on the graph after applying the
        // inverse permutation (i.e. they are the same multiset and legal).
        let rep = net.representation();
        let mut back = vec![0u32; 50];
        for v in 0..50u32 {
            back[v as usize] = ch[rep.original_index(v)];
        }
        let sep = SeparationVector::all_ones(2);
        ssg_labeling::verify_labeling(&rep.to_graph(), &sep, &back).unwrap();
    }

    #[test]
    fn simulation_runs_and_reports() {
        let mut rng = StdRng::seed_from_u64(131);
        let rep = simulate_corridor(cfg(40, 20, 0.1, 6, 30.0, 2), Policy::OptimalL1, &mut rng);
        assert_eq!(rep.epochs, 20);
        assert!(rep.mean_stations > 10.0);
        assert!(rep.mean_span > 0.0);
        assert!((0.0..=1.0).contains(&rep.mean_churn));
    }

    #[test]
    fn greedy_and_optimal_policies_both_work() {
        let mut rng = StdRng::seed_from_u64(132);
        let a = simulate_corridor(cfg(30, 12, 0.15, 5, 25.0, 2), Policy::Greedy, &mut rng);
        let mut rng = StdRng::seed_from_u64(132);
        let b = simulate_corridor(cfg(30, 12, 0.15, 5, 25.0, 2), Policy::OptimalL1, &mut rng);
        // Same RNG stream => same fleets; optimal span <= greedy span.
        assert!(b.mean_span <= a.mean_span + 1e-9);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn warm_workspace_channels_match_cold_solves() {
        let mut rng = StdRng::seed_from_u64(134);
        let nets: Vec<CorridorNetwork> = (0..3)
            .map(|_| CorridorNetwork::generate(30, 1.0, 1.0, 4.0, &mut rng))
            .collect();
        let mut ws = Workspace::new();
        for net in &nets {
            assert_eq!(net.l1_channels_ws(2, &mut ws), net.l1_channels(2));
            let sep = SeparationVector::all_ones(2);
            assert_eq!(net.greedy_channels_ws(&sep, &mut ws), net.greedy_channels(&sep));
        }
        assert_eq!(ws.solve_count(), 6);
    }

    #[test]
    fn epoch_solve_histogram_covers_every_epoch() {
        let mut rng = StdRng::seed_from_u64(135);
        let metrics = Metrics::with_tracing(256);
        let rep = simulate_corridor_with(
            cfg(30, 15, 0.1, 5, 25.0, 2),
            Policy::OptimalL1,
            &mut rng,
            &metrics,
        );
        assert_eq!(rep.epoch_solve.count(), 15, "one observation per epoch");
        assert!(rep.epoch_solve.max() >= rep.epoch_solve.p50());
        // The same observations roll up into the handle's solver histogram.
        let snap = metrics.snapshot();
        assert!(snap.hist(Hist::SolverSolve).count() >= 15);
        // Each epoch ran under a `netsim.epoch` span, and the solver's own
        // phase spans nest inside it.
        let recorder = metrics.recorder().expect("tracing handle has a recorder");
        let events = recorder.events();
        let epochs = events.iter().filter(|e| e.name == "netsim.epoch").count();
        assert_eq!(epochs, 15);
        assert!(events.iter().any(|e| e.name.starts_with("interval.")));
    }

    #[test]
    fn disabled_metrics_report_matches_instrumented_run() {
        let mut rng = StdRng::seed_from_u64(136);
        let a = simulate_corridor(cfg(25, 10, 0.2, 4, 20.0, 2), Policy::Greedy, &mut rng);
        let mut rng = StdRng::seed_from_u64(136);
        let b = simulate_corridor_with(
            cfg(25, 10, 0.2, 4, 20.0, 2),
            Policy::Greedy,
            &mut rng,
            &Metrics::enabled(),
        );
        assert_eq!(a.mean_span, b.mean_span);
        assert_eq!(a.total_retunes, b.total_retunes);
        assert_eq!(a.epoch_solve.count(), b.epoch_solve.count());
    }

    #[test]
    fn all_departures_keeps_simulation_alive() {
        let mut rng = StdRng::seed_from_u64(133);
        let rep = simulate_corridor(
            DynamicsConfig::default()
                .initial(5)
                .epochs(8)
                .p_depart(1.0)
                .arrivals_max(0)
                .corridor_len(10.0)
                .range_min(1.0)
                .range_max(2.0)
                .t(1),
            Policy::OptimalL1,
            &mut rng,
        );
        assert_eq!(rep.epochs, 8);
        assert!(rep.mean_stations >= 1.0);
        assert_eq!(rep.total_retunes, 0, "no survivors => no retunes");
    }
}
