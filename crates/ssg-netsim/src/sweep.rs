//! Rayon-parallel experiment harness: run a parameter grid across many
//! seeds, aggregate the per-run reports, and emit CSV rows for
//! EXPERIMENTS.md. This is the "evaluation section" machinery the paper
//! itself never had.

use rayon::prelude::*;
use ssg_labeling::{Workspace, WorkspacePool};
use ssg_telemetry::{Metrics, Phase};
use std::io::Write;

/// Aggregate statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarizes a (non-empty or empty) sample.
    pub fn of(values: &[f64]) -> Summary {
        let count = values.len();
        if count == 0 {
            return Summary {
                count,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min,
            max,
            stddev: var.sqrt(),
        }
    }
}

/// Runs `f` over every `(param, seed)` pair in parallel with rayon and
/// returns the results grouped by parameter (in input order, seeds in
/// order). `f` must be deterministic in its inputs for reproducibility.
///
/// ```
/// use ssg_netsim::run_grid;
/// let rows = run_grid(&[10u32, 20], &[1, 2, 3], |p, s| *p as u64 + s);
/// assert_eq!(rows, vec![vec![11, 12, 13], vec![21, 22, 23]]);
/// ```
pub fn run_grid<P, R, F>(params: &[P], seeds: &[u64], f: F) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
{
    params
        .par_iter()
        .map(|p| seeds.par_iter().map(|&s| f(p, s)).collect())
        .collect()
}

/// [`run_grid`] with telemetry: each `(param, seed)` cell is timed under
/// [`Phase::Cell`], so a post-run [`Metrics::snapshot`] reports total cell
/// wall time, cell count, and (dividing one by the other) grid throughput.
/// Counter updates are atomic, so the rayon workers share one handle.
pub fn run_grid_with<P, R, F>(params: &[P], seeds: &[u64], metrics: &Metrics, f: F) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
{
    params
        .par_iter()
        .map(|p| {
            seeds
                .par_iter()
                .map(|&s| {
                    let _cell = metrics.time(Phase::Cell);
                    f(p, s)
                })
                .collect()
        })
        .collect()
}

/// [`run_grid_with`] over a [`WorkspacePool`]: each cell additionally
/// receives an exclusive warm [`Workspace`] checked out of `pool`, so
/// repeated solves inside the sweep reuse arenas instead of reallocating.
/// Steady state holds one workspace per concurrently running worker; after
/// the run, `pool.total_solves() - pool.len()` solves were served warm.
///
/// Results are grouped exactly as [`run_grid`] groups them, and `f` must
/// not depend on *which* pooled workspace it receives (every solver in
/// `ssg-labeling` resets its scratch per solve, so this holds for free).
pub fn run_grid_pooled<P, R, F>(
    params: &[P],
    seeds: &[u64],
    pool: &WorkspacePool,
    metrics: &Metrics,
    f: F,
) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64, &mut Workspace) -> R + Sync,
{
    params
        .par_iter()
        .map(|p| {
            seeds
                .par_iter()
                .map(|&s| {
                    pool.with(|ws| {
                        let _cell = metrics.time(Phase::Cell);
                        f(p, s, ws)
                    })
                })
                .collect()
        })
        .collect()
}

/// [`run_grid_pooled`]'s twin routed through a running
/// [`Engine`](ssg_engine::Engine): every `(param, seed)` cell is shipped to
/// the engine's sharded workers via [`Engine::execute`](ssg_engine::Engine::execute),
/// so sweeps share the engine's queues, stealing, backpressure, and
/// per-worker warm workspace leases with the batch labeling traffic. Each
/// cell is timed under [`Phase::Cell`] on `metrics`, exactly like
/// [`run_grid_with`].
///
/// Unlike the rayon variants this requires `'static` captures (cells
/// outlive the submitting stack frame), so parameters are cloned into
/// their cells.
///
/// # Panics
///
/// Panics if a cell's closure panicked on a worker (the engine isolates
/// the panic; this harness refuses to return a grid with holes) or if the
/// engine is shutting down.
pub fn run_grid_engine<P, R, F>(
    params: &[P],
    seeds: &[u64],
    engine: &ssg_engine::Engine,
    metrics: &Metrics,
    f: F,
) -> Vec<Vec<R>>
where
    P: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&P, u64, &mut Workspace) -> R + Send + Sync + 'static,
{
    let f = std::sync::Arc::new(f);
    let (tx, rx) = std::sync::mpsc::channel();
    for (pi, p) in params.iter().enumerate() {
        for (si, &s) in seeds.iter().enumerate() {
            let f = std::sync::Arc::clone(&f);
            let p = p.clone();
            let tx = tx.clone();
            let cell_metrics = metrics.clone();
            engine
                .execute(move |ws| {
                    let _cell = cell_metrics.time(Phase::Cell);
                    let _ = tx.send((pi, si, f(&p, s, ws)));
                })
                .expect("engine refused a sweep cell (shutting down?)");
        }
    }
    drop(tx);
    let mut grid: Vec<Vec<Option<R>>> = params
        .iter()
        .map(|_| seeds.iter().map(|_| None).collect())
        .collect();
    // The iterator ends once every cell has reported or dropped its sender
    // (a panicked cell drops without sending — detected below).
    for (pi, si, r) in rx {
        grid[pi][si] = Some(r);
    }
    grid.into_iter()
        .enumerate()
        .map(|(pi, row)| {
            row.into_iter()
                .enumerate()
                .map(|(si, cell)| {
                    cell.unwrap_or_else(|| {
                        panic!("sweep cell (param {pi}, seed index {si}) panicked on a worker")
                    })
                })
                .collect()
        })
        .collect()
}

/// Sequential twin of [`run_grid`] — used to measure rayon's speedup in
/// experiment E8 and as a fallback in single-threaded contexts.
pub fn run_grid_sequential<P, R, F>(params: &[P], seeds: &[u64], f: F) -> Vec<Vec<R>>
where
    F: Fn(&P, u64) -> R,
{
    params
        .iter()
        .map(|p| seeds.iter().map(|&s| f(p, s)).collect())
        .collect()
}

/// One row of an experiment table: a parameter label plus named metric
/// summaries.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Human-readable parameter cell (e.g. `"n=4096 t=2"`).
    pub params: String,
    /// `(metric name, summary)` pairs, in column order.
    pub metrics: Vec<(String, Summary)>,
}

impl ExperimentRow {
    /// Builds a row from raw metric samples.
    pub fn new(params: impl Into<String>, metrics: &[(&str, &[f64])]) -> Self {
        ExperimentRow {
            params: params.into(),
            metrics: metrics
                .iter()
                .map(|(name, vals)| (name.to_string(), Summary::of(vals)))
                .collect(),
        }
    }
}

/// Writes rows as CSV (params column + `<metric>_mean`, `<metric>_min`,
/// `<metric>_max` columns) to any writer.
pub fn write_csv<W: Write>(mut w: W, rows: &[ExperimentRow]) -> std::io::Result<()> {
    let Some(first) = rows.first() else {
        return Ok(());
    };
    write!(w, "params")?;
    for (name, _) in &first.metrics {
        write!(w, ",{name}_mean,{name}_min,{name}_max")?;
    }
    writeln!(w)?;
    for row in rows {
        write!(w, "{}", row.params)?;
        for (_, s) in &row.metrics {
            write!(w, ",{:.4},{:.4},{:.4}", s.mean, s.min, s.max)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Renders rows as a GitHub-flavored markdown table (mean ± stddev).
pub fn to_markdown(rows: &[ExperimentRow]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut out = String::from("| params |");
    for (name, _) in &first.metrics {
        out.push_str(&format!(" {name} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &first.metrics {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("| {} |", row.params));
        for (_, s) in &row.metrics {
            if s.stddev > 1e-9 {
                out.push_str(&format!(" {:.2} ± {:.2} |", s.mean, s.stddev));
            } else {
                out.push_str(&format!(" {:.2} |", s.mean));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn grid_matches_sequential() {
        let params = vec![1u64, 2, 3];
        let seeds = vec![10u64, 20];
        let f = |p: &u64, s: u64| p * 1000 + s;
        let par = run_grid(&params, &seeds, f);
        let seq = run_grid_sequential(&params, &seeds, f);
        assert_eq!(par, seq);
        assert_eq!(par[2][1], 3020);
    }

    #[test]
    fn instrumented_grid_times_every_cell() {
        let params = vec![1u64, 2];
        let seeds = vec![10u64, 20, 30];
        let f = |p: &u64, s: u64| p * 1000 + s;
        let metrics = Metrics::enabled();
        let timed = run_grid_with(&params, &seeds, &metrics, f);
        assert_eq!(timed, run_grid_sequential(&params, &seeds, f));
        let snap = metrics.snapshot();
        assert_eq!(snap.phase_count(Phase::Cell), 6);
        // Disabled handle: same results, nothing recorded.
        let off = Metrics::disabled();
        run_grid_with(&params, &seeds, &off, f);
        assert_eq!(off.snapshot().phase_count(Phase::Cell), 0);
    }

    #[test]
    fn pooled_grid_matches_plain_grid_and_reuses_workspaces() {
        use crate::scenario::CorridorNetwork;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use ssg_labeling::solver::{default_registry, Problem};
        use ssg_labeling::SeparationVector;

        let params = vec![20usize, 35];
        let seeds = vec![7u64, 8, 9];
        let sep = SeparationVector::all_ones(2);
        let solve = |&n: &usize, s: u64, ws: &mut Workspace| {
            let mut rng = StdRng::seed_from_u64(s);
            let net = CorridorNetwork::generate(n, 1.0, 1.0, 4.0, &mut rng);
            let rep = net.representation();
            let lab = default_registry().solve(
                "interval_l1",
                &Problem::interval(rep, &sep),
                ws,
                &Metrics::disabled(),
            );
            let span = lab.span();
            ws.recycle(lab);
            span
        };
        let pool = WorkspacePool::new();
        let metrics = Metrics::enabled();
        let pooled = run_grid_pooled(&params, &seeds, &pool, &metrics, solve);
        let plain = run_grid(&params, &seeds, |p, s| {
            solve(p, s, &mut Workspace::new())
        });
        assert_eq!(pooled, plain);
        assert_eq!(metrics.snapshot().phase_count(Phase::Cell), 6);
        // All six cells were served by the pool; the workspaces it retired
        // account for every solve, and any worker that handled more than
        // one cell did so on a warm arena.
        assert!(!pool.is_empty());
        assert_eq!(pool.total_solves(), 6);
    }

    #[test]
    fn engine_grid_matches_plain_grid() {
        use crate::scenario::CorridorNetwork;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use ssg_labeling::solver::{default_registry, Problem};
        use ssg_labeling::SeparationVector;

        let params = vec![18usize, 28];
        let seeds = vec![3u64, 4, 5];
        fn solve(&n: &usize, s: u64, ws: &mut Workspace) -> u32 {
            let mut rng = StdRng::seed_from_u64(s);
            let net = CorridorNetwork::generate(n, 1.0, 1.0, 4.0, &mut rng);
            let sep = SeparationVector::all_ones(2);
            let lab = default_registry().solve(
                "interval_l1",
                &Problem::interval(net.representation(), &sep),
                ws,
                &Metrics::disabled(),
            );
            let span = lab.span();
            ws.recycle(lab);
            span
        }
        let engine = ssg_engine::Engine::builder().workers(2).build();
        let metrics = Metrics::enabled();
        let via_engine = run_grid_engine(&params, &seeds, &engine, &metrics, solve);
        let plain = run_grid(&params, &seeds, |p, s| solve(p, s, &mut Workspace::new()));
        assert_eq!(via_engine, plain);
        assert_eq!(metrics.snapshot().phase_count(Phase::Cell), 6);
        // A closure job counts as completed only after it returns, which
        // can lag the result arriving on the channel — drain first.
        engine.drain();
        assert_eq!(engine.stats().completed, 6);
        engine.shutdown();
    }

    #[test]
    fn csv_and_markdown_render() {
        let rows = vec![
            ExperimentRow::new("n=10", &[("span", &[4.0, 6.0][..]), ("ratio", &[1.0][..])]),
            ExperimentRow::new("n=20", &[("span", &[8.0][..]), ("ratio", &[1.5][..])]),
        ];
        let mut buf = Vec::new();
        write_csv(&mut buf, &rows).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.starts_with("params,span_mean,span_min,span_max,ratio_mean"));
        assert!(csv.contains("n=10,5.0000,4.0000,6.0000"));
        let md = to_markdown(&rows);
        assert!(md.contains("| n=20 |"));
        assert!(md.contains("±"));
        assert!(write_csv(&mut Vec::new(), &[]).is_ok());
        assert_eq!(to_markdown(&[]), "");
    }
}
