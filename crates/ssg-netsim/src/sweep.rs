//! Rayon-parallel experiment harness: run a parameter grid across many
//! seeds, aggregate the per-run reports, and emit CSV rows for
//! EXPERIMENTS.md. This is the "evaluation section" machinery the paper
//! itself never had.

use rayon::prelude::*;
use ssg_labeling::{PaletteKind, Workspace, WorkspacePool};
use ssg_telemetry::{Metrics, Phase};
use std::io::Write;

/// Aggregate statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarizes a (non-empty or empty) sample.
    pub fn of(values: &[f64]) -> Summary {
        let count = values.len();
        if count == 0 {
            return Summary {
                count,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min,
            max,
            stddev: var.sqrt(),
        }
    }
}

/// Execution backend of a [`GridRunner`].
///
/// One enum replaces what used to be five separate `run_grid*` entry
/// points: pick where the cells run, the grid semantics stay identical
/// (results grouped by parameter in input order, seeds in order, each cell
/// timed under [`Phase::Cell`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridBackend {
    /// Cells run in order on the calling thread, sharing one warm
    /// [`Workspace`] for the whole grid. The reference backend every other
    /// backend must agree with bit-for-bit.
    Sequential,
    /// Cells run rayon-parallel, each on an exclusive warm [`Workspace`]
    /// checked out of a [`WorkspacePool`].
    Pooled,
    /// Cells are shipped to a sharded [`Engine`](ssg_engine::Engine) with
    /// `workers` worker threads (or to an externally supplied engine, see
    /// [`GridRunner::engine`]), sharing its queues, stealing, backpressure,
    /// and per-worker warm workspace leases with batch labeling traffic.
    Engine {
        /// Worker threads of the internally built engine. Ignored when an
        /// external engine is attached.
        workers: usize,
    },
}

impl GridBackend {
    /// Canonical lowercase rendering (`sequential`, `pooled`, `engine:K`)
    /// — the token format `ssg lab` specs use for their backend axis.
    pub fn render(&self) -> String {
        match self {
            GridBackend::Sequential => "sequential".into(),
            GridBackend::Pooled => "pooled".into(),
            GridBackend::Engine { workers } => format!("engine:{workers}"),
        }
    }

    /// Parses the [`render`](Self::render) token format.
    ///
    /// ```
    /// use ssg_netsim::GridBackend;
    /// assert_eq!(GridBackend::parse("engine:4"), Some(GridBackend::Engine { workers: 4 }));
    /// assert_eq!(GridBackend::parse("engine:0"), None);
    /// assert_eq!(GridBackend::parse("pooled"), Some(GridBackend::Pooled));
    /// ```
    pub fn parse(token: &str) -> Option<GridBackend> {
        match token {
            "sequential" => Some(GridBackend::Sequential),
            "pooled" => Some(GridBackend::Pooled),
            _ => {
                let workers: usize = token.strip_prefix("engine:")?.parse().ok()?;
                (workers >= 1).then_some(GridBackend::Engine { workers })
            }
        }
    }
}

/// Unified builder over the experiment-grid execution backends.
///
/// ```
/// use ssg_netsim::{GridBackend, GridRunner};
/// let rows = GridRunner::new()
///     .backend(GridBackend::Sequential)
///     .run(&[10u32, 20], &[1, 2, 3], |p, s, _ws| u64::from(*p) + s);
/// assert_eq!(rows, vec![vec![11, 12, 13], vec![21, 22, 23]]);
/// ```
///
/// The cell closure always receives a warm [`Workspace`] (ignore it for
/// workspace-free cells) and must be deterministic in `(param, seed)`; the
/// engine backend additionally requires `'static` captures because cells
/// outlive the submitting stack frame, so the unified [`run`] carries the
/// superset bounds. Attach a [`Metrics`] handle to time every cell under
/// [`Phase::Cell`], a caller-owned [`WorkspacePool`] to observe warm-reuse
/// accounting, or a caller-owned [`Engine`](ssg_engine::Engine) to share
/// shards with live traffic.
///
/// [`run`]: GridRunner::run
#[derive(Clone)]
pub struct GridRunner<'a> {
    backend: GridBackend,
    palette: PaletteKind,
    metrics: Metrics,
    pool: Option<&'a WorkspacePool>,
    engine: Option<&'a ssg_engine::Engine>,
}

impl Default for GridRunner<'_> {
    fn default() -> Self {
        GridRunner::new()
    }
}

impl<'a> GridRunner<'a> {
    /// A runner on the default [`GridBackend::Pooled`] backend with
    /// disabled metrics.
    pub fn new() -> Self {
        GridRunner {
            backend: GridBackend::Pooled,
            palette: PaletteKind::default(),
            metrics: Metrics::disabled(),
            pool: None,
            engine: None,
        }
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn backend(mut self, backend: GridBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the palette backend every internally built workspace uses
    /// (default [`PaletteKind::Bitset`]). Ignored when a caller-owned
    /// [`pool`](Self::pool) or [`engine`](Self::engine) is attached — those
    /// carry their own palette choice.
    #[must_use]
    pub fn palette(mut self, palette: PaletteKind) -> Self {
        self.palette = palette;
        self
    }

    /// Attaches a metrics handle; every cell is timed under
    /// [`Phase::Cell`] on it.
    #[must_use]
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Uses `pool` for the [`GridBackend::Pooled`] backend instead of an
    /// internal throwaway pool, so the caller can inspect
    /// [`WorkspacePool::total_solves`] afterwards.
    #[must_use]
    pub fn pool(mut self, pool: &'a WorkspacePool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Ships cells to `engine` (and forces the backend to
    /// [`GridBackend::Engine`]) instead of building a private engine, so
    /// sweeps share shards with live batch traffic. The `workers` field of
    /// the backend is ignored — the attached engine already has its own.
    #[must_use]
    pub fn engine(mut self, engine: &'a ssg_engine::Engine) -> Self {
        self.backend = GridBackend::Engine {
            workers: engine.workers(),
        };
        self.engine = Some(engine);
        self
    }

    /// Runs `f` over every `(param, seed)` pair on the configured backend
    /// and returns the results grouped by parameter (input order, seeds in
    /// order).
    ///
    /// # Panics
    ///
    /// On the engine backend, panics if a cell's closure panicked on a
    /// worker (the engine isolates the panic; this harness refuses to
    /// return a grid with holes) or if the engine is shutting down.
    pub fn run<P, R, F>(&self, params: &[P], seeds: &[u64], f: F) -> Vec<Vec<R>>
    where
        P: Clone + Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&P, u64, &mut Workspace) -> R + Send + Sync + 'static,
    {
        match self.backend {
            GridBackend::Sequential => {
                grid_sequential_impl(params, seeds, self.palette, &self.metrics, f)
            }
            GridBackend::Pooled => match self.pool {
                Some(pool) => grid_pooled_impl(params, seeds, pool, &self.metrics, f),
                None => grid_pooled_impl(
                    params,
                    seeds,
                    &WorkspacePool::with_palette(self.palette),
                    &self.metrics,
                    f,
                ),
            },
            GridBackend::Engine { workers } => match self.engine {
                Some(engine) => grid_engine_impl(params, seeds, engine, &self.metrics, f),
                None => {
                    let engine = ssg_engine::Engine::builder()
                        .workers(workers)
                        .palette(self.palette)
                        .metrics(self.metrics.clone())
                        .build();
                    let grid = grid_engine_impl(params, seeds, &engine, &self.metrics, f);
                    engine.shutdown();
                    grid
                }
            },
        }
    }
}

/// [`GridBackend::Sequential`] body: in-order cells on one warm workspace.
/// Bounds stay relaxed (no `Sync`/`'static`) because nothing leaves the
/// calling thread.
fn grid_sequential_impl<P, R, F>(
    params: &[P],
    seeds: &[u64],
    palette: PaletteKind,
    metrics: &Metrics,
    f: F,
) -> Vec<Vec<R>>
where
    F: Fn(&P, u64, &mut Workspace) -> R,
{
    let mut ws = Workspace::with_palette(palette);
    params
        .iter()
        .map(|p| {
            seeds
                .iter()
                .map(|&s| {
                    let _cell = metrics.time(Phase::Cell);
                    f(p, s, &mut ws)
                })
                .collect()
        })
        .collect()
}

/// [`GridBackend::Pooled`] body: rayon-parallel cells over a shared
/// [`WorkspacePool`]. Steady state holds one workspace per concurrently
/// running worker; after the run, `pool.total_solves() - pool.len()` cells
/// were served warm. `f` must not depend on *which* pooled workspace it
/// receives (every solver in `ssg-labeling` resets its scratch per solve,
/// so this holds for free).
fn grid_pooled_impl<P, R, F>(
    params: &[P],
    seeds: &[u64],
    pool: &WorkspacePool,
    metrics: &Metrics,
    f: F,
) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64, &mut Workspace) -> R + Sync,
{
    params
        .par_iter()
        .map(|p| {
            seeds
                .par_iter()
                .map(|&s| {
                    pool.with(|ws| {
                        let _cell = metrics.time(Phase::Cell);
                        f(p, s, ws)
                    })
                })
                .collect()
        })
        .collect()
}

/// [`GridBackend::Engine`] body: every `(param, seed)` cell is shipped to
/// the engine's sharded workers via
/// [`Engine::execute`](ssg_engine::Engine::execute). Requires `'static`
/// captures (cells outlive the submitting stack frame), so parameters are
/// cloned into their cells.
fn grid_engine_impl<P, R, F>(
    params: &[P],
    seeds: &[u64],
    engine: &ssg_engine::Engine,
    metrics: &Metrics,
    f: F,
) -> Vec<Vec<R>>
where
    P: Clone + Send + 'static,
    R: Send + 'static,
    F: Fn(&P, u64, &mut Workspace) -> R + Send + Sync + 'static,
{
    let f = std::sync::Arc::new(f);
    let (tx, rx) = std::sync::mpsc::channel();
    for (pi, p) in params.iter().enumerate() {
        for (si, &s) in seeds.iter().enumerate() {
            let f = std::sync::Arc::clone(&f);
            let p = p.clone();
            let tx = tx.clone();
            let cell_metrics = metrics.clone();
            engine
                .execute(move |ws| {
                    let _cell = cell_metrics.time(Phase::Cell);
                    let _ = tx.send((pi, si, f(&p, s, ws)));
                })
                .expect("engine refused a sweep cell (shutting down?)");
        }
    }
    drop(tx);
    let mut grid: Vec<Vec<Option<R>>> = params
        .iter()
        .map(|_| seeds.iter().map(|_| None).collect())
        .collect();
    // The iterator ends once every cell has reported or dropped its sender
    // (a panicked cell drops without sending — detected below).
    for (pi, si, r) in rx {
        grid[pi][si] = Some(r);
    }
    grid.into_iter()
        .enumerate()
        .map(|(pi, row)| {
            row.into_iter()
                .enumerate()
                .map(|(si, cell)| {
                    cell.unwrap_or_else(|| {
                        panic!("sweep cell (param {pi}, seed index {si}) panicked on a worker")
                    })
                })
                .collect()
        })
        .collect()
}

/// One row of an experiment table: a parameter label plus named metric
/// summaries.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Human-readable parameter cell (e.g. `"n=4096 t=2"`).
    pub params: String,
    /// `(metric name, summary)` pairs, in column order.
    pub metrics: Vec<(String, Summary)>,
}

impl ExperimentRow {
    /// Builds a row from raw metric samples.
    pub fn new(params: impl Into<String>, metrics: &[(&str, &[f64])]) -> Self {
        ExperimentRow {
            params: params.into(),
            metrics: metrics
                .iter()
                .map(|(name, vals)| (name.to_string(), Summary::of(vals)))
                .collect(),
        }
    }
}

/// Writes rows as CSV (params column + `<metric>_mean`, `<metric>_min`,
/// `<metric>_max` columns) to any writer.
pub fn write_csv<W: Write>(mut w: W, rows: &[ExperimentRow]) -> std::io::Result<()> {
    let Some(first) = rows.first() else {
        return Ok(());
    };
    write!(w, "params")?;
    for (name, _) in &first.metrics {
        write!(w, ",{name}_mean,{name}_min,{name}_max")?;
    }
    writeln!(w)?;
    for row in rows {
        write!(w, "{}", row.params)?;
        for (_, s) in &row.metrics {
            write!(w, ",{:.4},{:.4},{:.4}", s.mean, s.min, s.max)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Renders rows as a GitHub-flavored markdown table (mean ± stddev).
pub fn to_markdown(rows: &[ExperimentRow]) -> String {
    let Some(first) = rows.first() else {
        return String::new();
    };
    let mut out = String::from("| params |");
    for (name, _) in &first.metrics {
        out.push_str(&format!(" {name} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &first.metrics {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("| {} |", row.params));
        for (_, s) in &row.metrics {
            if s.stddev > 1e-9 {
                out.push_str(&format!(" {:.2} ± {:.2} |", s.mean, s.stddev));
            } else {
                out.push_str(&format!(" {:.2} |", s.mean));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    /// The grid cell every parity test below solves: corridor network of
    /// `n` transceivers, L(1,1) span via the interval solver.
    fn corridor_span(&n: &usize, s: u64, ws: &mut Workspace) -> u32 {
        use crate::scenario::CorridorNetwork;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use ssg_labeling::solver::{default_registry, Problem};
        use ssg_labeling::SeparationVector;

        let mut rng = StdRng::seed_from_u64(s);
        let net = CorridorNetwork::generate(n, 1.0, 1.0, 4.0, &mut rng);
        let sep = SeparationVector::all_ones(2);
        let lab = default_registry().solve(
            "interval_l1",
            &Problem::interval(net.representation(), &sep),
            ws,
            &Metrics::disabled(),
        );
        let span = lab.span();
        ws.recycle(lab);
        span
    }

    #[test]
    fn backend_tokens_round_trip() {
        for backend in [
            GridBackend::Sequential,
            GridBackend::Pooled,
            GridBackend::Engine { workers: 3 },
        ] {
            assert_eq!(GridBackend::parse(&backend.render()), Some(backend));
        }
        assert_eq!(GridBackend::parse("engine:0"), None);
        assert_eq!(GridBackend::parse("engine:x"), None);
        assert_eq!(GridBackend::parse("threads"), None);
    }

    #[test]
    fn pooled_backend_matches_sequential() {
        let params = vec![1u64, 2, 3];
        let seeds = vec![10u64, 20];
        let f = |p: &u64, s: u64, _ws: &mut Workspace| p * 1000 + s;
        let par = GridRunner::new().run(&params, &seeds, f);
        let seq = GridRunner::new()
            .backend(GridBackend::Sequential)
            .run(&params, &seeds, f);
        assert_eq!(par, seq);
        assert_eq!(par[2][1], 3020);
    }

    #[test]
    fn instrumented_grid_times_every_cell() {
        let params = vec![1u64, 2];
        let seeds = vec![10u64, 20, 30];
        let f = |p: &u64, s: u64, _ws: &mut Workspace| p * 1000 + s;
        let metrics = Metrics::enabled();
        let timed = GridRunner::new()
            .metrics(metrics.clone())
            .run(&params, &seeds, f);
        assert_eq!(
            timed,
            GridRunner::new()
                .backend(GridBackend::Sequential)
                .run(&params, &seeds, f)
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.phase_count(Phase::Cell), 6);
        // Disabled handle (the default): same results, nothing recorded.
        let off = Metrics::disabled();
        GridRunner::new()
            .metrics(off.clone())
            .run(&params, &seeds, f);
        assert_eq!(off.snapshot().phase_count(Phase::Cell), 0);
    }

    #[test]
    fn pooled_grid_matches_sequential_and_reuses_workspaces() {
        let params = vec![20usize, 35];
        let seeds = vec![7u64, 8, 9];
        let pool = WorkspacePool::new();
        let metrics = Metrics::enabled();
        let pooled = GridRunner::new()
            .pool(&pool)
            .metrics(metrics.clone())
            .run(&params, &seeds, corridor_span);
        let plain = GridRunner::new()
            .backend(GridBackend::Sequential)
            .run(&params, &seeds, corridor_span);
        assert_eq!(pooled, plain);
        assert_eq!(metrics.snapshot().phase_count(Phase::Cell), 6);
        // All six cells were served by the pool; the workspaces it retired
        // account for every solve, and any worker that handled more than
        // one cell did so on a warm arena.
        assert!(!pool.is_empty());
        assert_eq!(pool.total_solves(), 6);
    }

    #[test]
    fn engine_backend_matches_sequential() {
        let params = vec![18usize, 28];
        let seeds = vec![3u64, 4, 5];
        let plain = GridRunner::new()
            .backend(GridBackend::Sequential)
            .run(&params, &seeds, corridor_span);
        // Internally built engine, selected by backend token.
        let built = GridRunner::new()
            .backend(GridBackend::Engine { workers: 2 })
            .run(&params, &seeds, corridor_span);
        assert_eq!(built, plain);
        // Caller-owned engine: sweeps share its shards and show up in its
        // stats.
        let engine = ssg_engine::Engine::builder().workers(2).build();
        let metrics = Metrics::enabled();
        let via_engine = GridRunner::new()
            .engine(&engine)
            .metrics(metrics.clone())
            .run(&params, &seeds, corridor_span);
        assert_eq!(via_engine, plain);
        assert_eq!(metrics.snapshot().phase_count(Phase::Cell), 6);
        // A closure job counts as completed only after it returns, which
        // can lag the result arriving on the channel — drain first.
        engine.drain();
        assert_eq!(engine.stats().completed, 6);
        engine.shutdown();
    }

    /// Palette parity: both palette backends, on every grid backend,
    /// produce identical span grids (the bitset palette is a drop-in
    /// replacement for the reference list, probe-for-probe).
    #[test]
    fn palette_backends_agree_across_grid_backends() {
        let params = vec![16usize, 30];
        let seeds = vec![11u64, 12];
        let reference = GridRunner::new()
            .backend(GridBackend::Sequential)
            .palette(PaletteKind::List)
            .run(&params, &seeds, corridor_span);
        for palette in PaletteKind::ALL {
            for backend in [
                GridBackend::Sequential,
                GridBackend::Pooled,
                GridBackend::Engine { workers: 2 },
            ] {
                let grid = GridRunner::new()
                    .backend(backend)
                    .palette(palette)
                    .run(&params, &seeds, corridor_span);
                assert_eq!(grid, reference, "palette={palette} backend {backend:?}");
            }
        }
        // A caller-owned pool carries its own palette choice.
        let pool = WorkspacePool::with_palette(PaletteKind::List);
        let pooled = GridRunner::new()
            .pool(&pool)
            .run(&params, &seeds, corridor_span);
        assert_eq!(pooled, reference);
        assert_eq!(pool.palette_kind(), PaletteKind::List);
    }

    #[test]
    fn csv_and_markdown_render() {
        let rows = vec![
            ExperimentRow::new("n=10", &[("span", &[4.0, 6.0][..]), ("ratio", &[1.0][..])]),
            ExperimentRow::new("n=20", &[("span", &[8.0][..]), ("ratio", &[1.5][..])]),
        ];
        let mut buf = Vec::new();
        write_csv(&mut buf, &rows).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.starts_with("params,span_mean,span_min,span_max,ratio_mean"));
        assert!(csv.contains("n=10,5.0000,4.0000,6.0000"));
        let md = to_markdown(&rows);
        assert!(md.contains("| n=20 |"));
        assert!(md.contains("±"));
        assert!(write_csv(&mut Vec::new(), &[]).is_ok());
        assert_eq!(to_markdown(&[]), "");
    }
}
