//! # ssg-netsim
//!
//! Synthetic wireless-network workloads and the parallel experiment harness
//! for the strongly-simplicial channel-assignment library.
//!
//! The paper (IPPS 2003) is purely theoretical; its motivation — assigning
//! channels to stations so that nearby stations get well-separated
//! frequencies — is reproduced here as three scenario families whose
//! conflict graphs fall exactly in the paper's graph classes (corridor →
//! interval, vehicular platoon → unit interval, backbone → tree), plus a
//! rayon-based sweep harness that regenerates every experiment table in
//! EXPERIMENTS.md from seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod incremental;
pub mod scenario;
pub mod sweep;

pub use dynamics::{simulate_corridor, ChurnReport, DynamicsConfig, Policy};
pub use incremental::{simulate_corridor_incremental, simulate_corridor_incremental_with};
pub use scenario::{AssignmentReport, BackboneNetwork, CorridorNetwork, Station, VehicularNetwork};
pub use sweep::{to_markdown, write_csv, ExperimentRow, GridBackend, GridRunner, Summary};
