//! Integration: the sweep harness drives real scenario assignments across a
//! parameter grid, aggregates them, and renders CSV/markdown — the exact
//! path the report example and EXPERIMENTS.md rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssg_labeling::Workspace;
use ssg_netsim::{
    to_markdown, write_csv, BackboneNetwork, CorridorNetwork, ExperimentRow, GridBackend,
    GridRunner, Summary,
};

#[test]
fn grid_of_real_assignments_parallel_equals_sequential() {
    let params: Vec<(usize, u32)> = vec![(50, 1), (50, 2), (120, 2)];
    let seeds: Vec<u64> = vec![1, 2, 3, 4];
    let cell = |p: &(usize, u32), seed: u64, _ws: &mut Workspace| {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = CorridorNetwork::generate(p.0, 1.0, 1.0, 4.0, &mut rng);
        let r = net.assign_l1(p.1);
        assert!(r.verified);
        (r.span, r.lower_bound)
    };
    let par = GridRunner::new().run(&params, &seeds, cell);
    let seq = GridRunner::new()
        .backend(GridBackend::Sequential)
        .run(&params, &seeds, cell);
    assert_eq!(par, seq);
    // Optimal algorithm: span equals its lower bound everywhere.
    for row in &par {
        for &(span, lower) in row {
            assert_eq!(span, lower);
        }
    }
}

#[test]
fn rows_aggregate_and_render() {
    let seeds: Vec<u64> = (0..6).collect();
    let spans: Vec<f64> = seeds
        .iter()
        .map(|&s| {
            let mut rng = StdRng::seed_from_u64(s);
            let net = BackboneNetwork::generate(80, 3, &mut rng);
            net.assign_l1(2).span as f64
        })
        .collect();
    let row = ExperimentRow::new("backbone n=80 t=2", &[("span", &spans[..])]);
    let summary = &row.metrics[0].1;
    assert_eq!(summary.count, 6);
    assert!(summary.min <= summary.mean && summary.mean <= summary.max);

    let mut csv = Vec::new();
    write_csv(&mut csv, std::slice::from_ref(&row)).unwrap();
    let csv = String::from_utf8(csv).unwrap();
    assert!(csv.contains("backbone n=80 t=2"));
    let md = to_markdown(std::slice::from_ref(&row));
    assert!(md.starts_with("| params |"));
}

#[test]
fn summary_of_constant_sample_has_zero_stddev() {
    let s = Summary::of(&[5.0; 10]);
    assert_eq!(s.stddev, 0.0);
    assert_eq!(s.mean, 5.0);
}
