//! # ssg-engine
//!
//! A sharded batch labeling engine over the [`ssg_labeling`] solver set:
//! the production front door the ROADMAP's north-star asks for. Callers
//! hand the engine batches of [`LabelRequest`]s (an owned instance, a
//! separation vector, a solver hint, an optional deadline) and get back
//! one [`LabelResponse`] per request, in batch order, with every failure
//! mode — unknown solver, class mismatch, blown deadline, solver panic —
//! reified as an [`SsgError`] instead of a crash or a hung queue.
//!
//! ## Architecture
//!
//! * **Sharded bounded queues.** Each worker owns one shard (a bounded
//!   `Mutex<VecDeque>` + condvars). Submission round-robins across
//!   shards; a worker drains its own shard FIFO and, when empty,
//!   **steals** from the back of sibling shards (LIFO steal keeps the
//!   victim's FIFO head intact).
//! * **Backpressure.** When every shard is full, [`Backpressure::Block`]
//!   parks the submitter until a worker frees a slot, while
//!   [`Backpressure::FailFast`] returns [`SsgError::QueueFull`]
//!   immediately. The caller picks the policy at build time.
//! * **Workspace leases.** Each worker leases one warm
//!   [`Workspace`] from a shared
//!   [`WorkspacePool`] for its whole lifetime, so repeated same-shaped
//!   solves hit the zero-allocation path exactly as the sequential
//!   `*_ws` entry points do. A lease is replaced with a fresh arena
//!   after a caught panic (the old one may be mid-mutation).
//! * **Panic isolation.** Solver panics are caught per request with
//!   `catch_unwind` and surfaced as [`SsgError::WorkerPanic`]; the
//!   worker thread survives and keeps serving.
//! * **Deadlines.** A request's deadline is checked when a worker
//!   dequeues it; an expired request is answered with
//!   [`SsgError::DeadlineExceeded`] without running the solver.
//! * **Drain-then-shutdown.** [`Engine::shutdown`] (and `Drop`) stops
//!   accepting, waits for in-flight work to finish, then joins the
//!   workers — no request submitted before shutdown is lost.
//!
//! Engine activity is visible through [`ssg_telemetry`]
//! ([`Counter::EngineRequests`], [`Counter::EngineSteals`],
//! [`Counter::EngineBackpressureWaits`], [`Counter::EngineDeadlineMisses`],
//! [`Counter::EnginePanics`], [`Phase::Batch`]) and through the engine's
//! own [`EngineStats`] snapshot.
//!
//! ```
//! use ssg_engine::{Engine, LabelRequest, RequestInstance};
//! use ssg_labeling::SeparationVector;
//! use ssg_graph::generators;
//!
//! let engine = Engine::builder().workers(2).build();
//! let reqs = (0..4u64)
//!     .map(|id| LabelRequest::new(
//!         id,
//!         RequestInstance::Graph(generators::path(6)),
//!         SeparationVector::two(2, 1).unwrap(),
//!     ))
//!     .collect();
//! let responses = engine.run_batch(reqs);
//! assert_eq!(responses.len(), 4);
//! assert!(responses.iter().all(|r| r.result.is_ok()));
//! engine.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssg_error::SsgError;
use ssg_graph::Graph;
use ssg_intervals::{IntervalRepresentation, UnitIntervalRepresentation};
use ssg_labeling::solver::Problem;
use ssg_labeling::{
    Labeling, PaletteKind, SeparationVector, SolverRegistry, Workspace, WorkspacePool,
};
use ssg_telemetry::{Counter, Gauge, Hist, Metrics, Phase};
use ssg_tree::RootedTree;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The owned structure a [`LabelRequest`] carries. Unlike the borrowed
/// [`ProblemInstance`](ssg_labeling::ProblemInstance), requests own their
/// instance so batches can cross thread boundaries.
#[derive(Debug, Clone)]
pub enum RequestInstance {
    /// A bare graph (auto-dispatch classifies it).
    Graph(Graph),
    /// An interval representation in left-endpoint order (A1, A2).
    Interval(IntervalRepresentation),
    /// A proper/unit interval representation (A3).
    UnitInterval(UnitIntervalRepresentation),
    /// A BFS-canonical rooted tree (A4, A5).
    Tree(RootedTree),
}

impl RequestInstance {
    /// Number of vertices in the instance.
    pub fn num_vertices(&self) -> usize {
        match self {
            RequestInstance::Graph(g) => g.num_vertices(),
            RequestInstance::Interval(rep) => rep.len(),
            RequestInstance::UnitInterval(rep) => rep.len(),
            RequestInstance::Tree(t) => t.len(),
        }
    }
}

/// How a [`LabelRequest`] picks its algorithm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SolverHint {
    /// Route by instance shape and separation vector (the same tables as
    /// [`SolverRegistry::auto_coloring`]); the strongest applicable solver
    /// wins.
    #[default]
    Auto,
    /// Dispatch to the named registered solver; unknown names come back as
    /// [`SsgError::UnknownSolver`], shape mismatches as
    /// [`SsgError::ClassMismatch`].
    Named(String),
}

/// One unit of engine work: what to label, under which constraints, with
/// which solver, by when.
#[derive(Debug, Clone)]
pub struct LabelRequest {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The owned instance to label.
    pub instance: RequestInstance,
    /// The separation vector to enforce.
    pub sep: SeparationVector,
    /// Algorithm selection (defaults to [`SolverHint::Auto`]).
    pub hint: SolverHint,
    /// Absolute expiry: requests still queued past this instant are
    /// answered with [`SsgError::DeadlineExceeded`] instead of solved.
    pub deadline: Option<Instant>,
    /// Wire-propagated trace context `(trace_id, parent_span_id)`: span
    /// events for this request are tagged with the caller's trace id
    /// instead of the local request id, and worker spans adopt the
    /// caller's span as their parent (see
    /// `Metrics::trace_scope_with_parent`). `None` = locally originated;
    /// events fall back to the request id as trace id.
    pub trace: Option<(u64, u64)>,
}

impl LabelRequest {
    /// A request with auto solver selection and no deadline.
    pub fn new(id: u64, instance: RequestInstance, sep: SeparationVector) -> Self {
        Self {
            id,
            instance,
            sep,
            hint: SolverHint::Auto,
            deadline: None,
            trace: None,
        }
    }

    /// Pins the request to a named solver.
    #[must_use]
    pub fn solver(mut self, name: impl Into<String>) -> Self {
        self.hint = SolverHint::Named(name.into());
        self
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets a deadline `timeout` from now.
    #[must_use]
    pub fn timeout(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Adopts a wire-propagated trace context: `trace_id` tags every span
    /// event this request produces, and `parent_span_id` (0 = none)
    /// becomes the parent of the worker's spans.
    #[must_use]
    pub fn trace(mut self, trace_id: u64, parent_span_id: u64) -> Self {
        self.trace = Some((trace_id, parent_span_id));
        self
    }

    /// The trace id this request's events are tagged with: the propagated
    /// id when one was supplied, otherwise the request id.
    pub fn trace_id(&self) -> u64 {
        self.trace.map_or(self.id, |(t, _)| t)
    }
}

/// A successfully solved request.
#[derive(Debug, Clone)]
pub struct LabelOutcome {
    /// The labeling, in the request instance's own vertex numbering.
    pub labeling: Labeling,
    /// The solver (or auto-dispatch algorithm description) that produced it.
    pub algorithm: String,
    /// Wall time the solve took on the worker.
    pub wall: Duration,
}

/// The engine's answer to one [`LabelRequest`].
#[derive(Debug)]
pub struct LabelResponse {
    /// The request's correlation id.
    pub id: u64,
    /// Position of the request in its batch (submission order for direct
    /// [`Engine::submit`] calls).
    pub batch_index: usize,
    /// Index of the worker that served the request.
    pub worker: usize,
    /// The labeling, or the reified failure.
    pub result: Result<LabelOutcome, SsgError>,
}

/// What [`Engine::submit`] does when every shard queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Park the submitting thread until a worker frees a slot.
    #[default]
    Block,
    /// Return [`SsgError::QueueFull`] immediately.
    FailFast,
}

/// A plain-data snapshot of engine activity (see [`Engine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Label requests accepted (excludes rejected submissions).
    pub submitted: u64,
    /// Jobs fully processed (label requests + closure jobs).
    pub completed: u64,
    /// Jobs a worker took from a sibling's shard.
    pub steals: u64,
    /// Times a blocking submitter had to wait for queue space.
    pub backpressure_waits: u64,
    /// Requests answered with [`SsgError::DeadlineExceeded`].
    pub deadline_misses: u64,
    /// Solver panics caught and converted to [`SsgError::WorkerPanic`].
    pub panics: u64,
    /// Jobs currently queued or running.
    pub in_flight: u64,
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    steals: AtomicU64,
    backpressure_waits: AtomicU64,
    deadline_misses: AtomicU64,
    panics: AtomicU64,
}

enum Job {
    Label {
        seq: usize,
        // Boxed so a queued label request is pointer-sized next to Task,
        // not 288 bytes of inline SeparationVector + hint strings.
        req: Box<LabelRequest>,
        tx: Sender<LabelResponse>,
        // Submission timestamp feeding the queue-wait and end-to-end
        // latency histograms; `None` when telemetry is disabled so the
        // fast path never reads the clock.
        enqueued_at: Option<Instant>,
    },
    Task(Box<dyn FnOnce(&mut Workspace) + Send>),
}

struct Shard {
    jobs: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            jobs: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }
}

struct Inner {
    shards: Vec<Shard>,
    capacity: usize,
    backpressure: Backpressure,
    accepting: AtomicBool,
    running: AtomicBool,
    in_flight: AtomicUsize,
    drain_lock: Mutex<()>,
    drained: Condvar,
    // Jobs currently sitting in shard queues, mirrored outside the shard
    // locks so gauge sampling is two atomic loads, not a lock sweep.
    queued: AtomicUsize,
    next_shard: AtomicUsize,
    next_seq: AtomicUsize,
    registry: Arc<SolverRegistry>,
    pool: Arc<WorkspacePool>,
    metrics: Metrics,
    stats: StatCells,
}

/// Configures and builds an [`Engine`]. Obtained from [`Engine::builder`];
/// every setter has a sensible default, so `Engine::builder().build()` is
/// a valid production engine.
pub struct EngineBuilder {
    workers: usize,
    queue_capacity: usize,
    backpressure: Backpressure,
    registry: Option<Arc<SolverRegistry>>,
    pool: Option<Arc<WorkspacePool>>,
    palette: PaletteKind,
    metrics: Metrics,
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("backpressure", &self.backpressure)
            .finish_non_exhaustive()
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 64,
            backpressure: Backpressure::Block,
            registry: None,
            pool: None,
            palette: PaletteKind::default(),
            metrics: Metrics::disabled(),
        }
    }
}

impl EngineBuilder {
    /// Number of worker threads (and shards). Clamped to at least 1;
    /// defaults to the machine's available parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Per-shard queue bound (default 64). Clamped to at least 1.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Full-queue policy (default [`Backpressure::Block`]).
    #[must_use]
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.backpressure = policy;
        self
    }

    /// The solver set to dispatch through (default: a fresh
    /// [`SolverRegistry::with_paper_algorithms`]).
    #[must_use]
    pub fn registry(mut self, registry: Arc<SolverRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The workspace pool workers lease arenas from (default: a fresh
    /// pool). Sharing a pool across engines shares the warm arenas.
    #[must_use]
    pub fn pool(mut self, pool: Arc<WorkspacePool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Palette backend of the internally built workspace pool (default
    /// [`PaletteKind::Bitset`]). Ignored when an explicit
    /// [`pool`](Self::pool) is attached — the pool already fixes the
    /// palette its workspaces carry.
    #[must_use]
    pub fn palette(mut self, palette: PaletteKind) -> Self {
        self.palette = palette;
        self
    }

    /// Telemetry handle engine counters and solver counters land on
    /// (default: disabled).
    #[must_use]
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Spawns the workers and returns the running engine.
    pub fn build(self) -> Engine {
        let inner = Arc::new(Inner {
            shards: (0..self.workers).map(|_| Shard::new()).collect(),
            capacity: self.queue_capacity,
            backpressure: self.backpressure,
            accepting: AtomicBool::new(true),
            running: AtomicBool::new(true),
            in_flight: AtomicUsize::new(0),
            drain_lock: Mutex::new(()),
            drained: Condvar::new(),
            queued: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            next_seq: AtomicUsize::new(0),
            registry: self
                .registry
                .unwrap_or_else(|| Arc::new(SolverRegistry::with_paper_algorithms())),
            pool: self
                .pool
                .unwrap_or_else(|| Arc::new(WorkspacePool::with_palette(self.palette))),
            metrics: self.metrics,
            stats: StatCells::default(),
        });
        let handles = (0..self.workers)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ssg-engine-{me}"))
                    .spawn(move || {
                        let pool = Arc::clone(&inner.pool);
                        pool.with(|ws| worker_loop(&inner, me, ws));
                    })
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Engine { inner, handles }
    }
}

/// The sharded batch labeling engine. See the [module docs](self) for the
/// architecture; construct one with [`Engine::builder`].
pub struct Engine {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.handles.len())
            .field("queue_capacity", &self.inner.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with `workers` threads and default settings.
    pub fn new(workers: usize) -> Engine {
        Engine::builder().workers(workers).build()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Palette backend the engine's workspace pool hands to every worker.
    pub fn palette_kind(&self) -> PaletteKind {
        self.inner.pool.palette_kind()
    }

    /// The telemetry handle this engine records on — the ingress hook the
    /// network front door (`ssg-net`) uses to render `/metrics` from the
    /// same counters, histograms, and gauges the workers feed.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Whether the engine still accepts submissions (`false` once a drain
    /// or shutdown has begun). Acceptors can poll this to refuse new
    /// network work while in-flight requests finish.
    pub fn is_accepting(&self) -> bool {
        self.inner.accepting.load(Ordering::Acquire)
    }

    /// Drain hook: stop accepting new submissions without blocking or
    /// joining workers. In-flight and queued jobs still complete; pair with
    /// [`Engine::drain`] to wait for them. Idempotent.
    pub fn begin_drain(&self) {
        self.inner.accepting.store(false, Ordering::Release);
        for shard in &self.inner.shards {
            shard.not_full.notify_all();
        }
    }

    /// Solves a whole batch and returns one response per request, ordered
    /// by [`LabelResponse::batch_index`] (i.e. input order). Requests the
    /// engine refuses to accept (fail-fast queue full, shutdown racing)
    /// are answered inline with the refusal as their `result`, so the
    /// output always has the input's length. The batch's wall time is
    /// recorded under [`Phase::Batch`].
    pub fn run_batch(&self, requests: Vec<LabelRequest>) -> Vec<LabelResponse> {
        let _batch_timer = self.inner.metrics.time(Phase::Batch);
        let total = requests.len();
        let (tx, rx) = mpsc::channel();
        let mut responses: Vec<LabelResponse> = Vec::with_capacity(total);
        for (seq, req) in requests.into_iter().enumerate() {
            let id = req.id;
            if let Err(e) = self.submit_seq(seq, req, &tx) {
                responses.push(LabelResponse {
                    id,
                    batch_index: seq,
                    worker: usize::MAX,
                    result: Err(e),
                });
            }
        }
        drop(tx);
        responses.extend(rx.iter());
        debug_assert_eq!(responses.len(), total);
        responses.sort_unstable_by_key(|r| r.batch_index);
        responses
    }

    /// Submits one request; its response is delivered on `tx`. The
    /// response's `batch_index` is the engine-wide submission sequence
    /// number. Fails with [`SsgError::QueueFull`] (fail-fast policy) or
    /// [`SsgError::ShuttingDown`] without sending anything.
    pub fn submit(&self, req: LabelRequest, tx: &Sender<LabelResponse>) -> Result<(), SsgError> {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        self.submit_seq(seq, req, tx)
    }

    fn submit_seq(
        &self,
        seq: usize,
        req: LabelRequest,
        tx: &Sender<LabelResponse>,
    ) -> Result<(), SsgError> {
        let trace_id = req.trace_id();
        let enqueued_at = self.inner.metrics.is_enabled().then(Instant::now);
        self.inner.push_job(Job::Label {
            seq,
            req: Box::new(req),
            tx: tx.clone(),
            enqueued_at,
        })?;
        self.inner.metrics.event_for(trace_id, "engine.enqueue");
        self.inner.metrics.add(Counter::EngineRequests, 1);
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Runs an arbitrary closure on a worker, with that worker's leased
    /// warm [`Workspace`] — the escape hatch parallel sweeps use to run
    /// non-request work (e.g. whole-simulation cells) through the same
    /// shards, stealing, and backpressure. Panics inside the closure are
    /// caught and counted like solver panics; the closure reports results
    /// through its own captured channel.
    pub fn execute(
        &self,
        job: impl FnOnce(&mut Workspace) + Send + 'static,
    ) -> Result<(), SsgError> {
        self.inner.push_job(Job::Task(Box::new(job)))
    }

    /// Blocks until every accepted job has been fully processed.
    pub fn drain(&self) {
        self.inner.wait_drained();
    }

    /// Current engine activity totals.
    pub fn stats(&self) -> EngineStats {
        let s = &self.inner.stats;
        EngineStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            backpressure_waits: s.backpressure_waits.load(Ordering::Relaxed),
            deadline_misses: s.deadline_misses.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            in_flight: self.inner.in_flight.load(Ordering::Acquire) as u64,
        }
    }

    /// Jobs currently sitting in shard queues (racy snapshot).
    pub fn queue_depth(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.jobs.lock().expect("engine shard poisoned").len())
            .sum()
    }

    /// Graceful drain-then-shutdown: stop accepting, finish every accepted
    /// job, join the workers. Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.inner.accepting.store(false, Ordering::Release);
        for shard in &self.inner.shards {
            shard.not_full.notify_all();
        }
        self.inner.wait_drained();
        self.inner.running.store(false, Ordering::Release);
        for shard in &self.inner.shards {
            shard.not_empty.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl Inner {
    /// Enqueues a job, applying the backpressure policy. One pass over all
    /// shards looks for a free slot before the policy kicks in, so a
    /// single slow shard does not stall submission while others are idle.
    fn push_job(&self, job: Job) -> Result<(), SsgError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(SsgError::ShuttingDown);
        }
        let n = self.shards.len();
        let start = self.next_shard.fetch_add(1, Ordering::Relaxed) % n;
        for k in 0..n {
            let shard = &self.shards[(start + k) % n];
            let mut q = shard.jobs.lock().expect("engine shard poisoned");
            if q.len() < self.capacity {
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                self.queued.fetch_add(1, Ordering::Relaxed);
                q.push_back(job);
                drop(q);
                shard.not_empty.notify_one();
                return Ok(());
            }
        }
        match self.backpressure {
            Backpressure::FailFast => Err(SsgError::QueueFull),
            Backpressure::Block => {
                let shard = &self.shards[start];
                let mut q = shard.jobs.lock().expect("engine shard poisoned");
                while q.len() >= self.capacity {
                    if !self.accepting.load(Ordering::Acquire) {
                        return Err(SsgError::ShuttingDown);
                    }
                    self.metrics.add(Counter::EngineBackpressureWaits, 1);
                    if let Job::Label { req, .. } = &job {
                        self.metrics
                            .event_for(req.trace_id(), "engine.backpressure_wait");
                    }
                    self.stats
                        .backpressure_waits
                        .fetch_add(1, Ordering::Relaxed);
                    let (guard, _) = shard
                        .not_full
                        .wait_timeout(q, Duration::from_millis(5))
                        .expect("engine shard poisoned");
                    q = guard;
                }
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                self.queued.fetch_add(1, Ordering::Relaxed);
                q.push_back(job);
                drop(q);
                shard.not_empty.notify_one();
                Ok(())
            }
        }
    }

    /// Pops the next job for worker `me`: own shard first (FIFO), then a
    /// steal sweep over siblings (LIFO), then a short park on the own
    /// shard's condvar. Returns `None` when the engine stops running.
    fn next_job(&self, me: usize) -> Option<Job> {
        let n = self.shards.len();
        loop {
            {
                let mut q = self.shards[me].jobs.lock().expect("engine shard poisoned");
                if let Some(job) = q.pop_front() {
                    drop(q);
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                    self.shards[me].not_full.notify_one();
                    return Some(job);
                }
            }
            for k in 1..n {
                let victim = (me + k) % n;
                let mut q = self.shards[victim]
                    .jobs
                    .lock()
                    .expect("engine shard poisoned");
                if let Some(job) = q.pop_back() {
                    drop(q);
                    self.queued.fetch_sub(1, Ordering::Relaxed);
                    self.shards[victim].not_full.notify_one();
                    self.metrics.add(Counter::EngineSteals, 1);
                    if let Job::Label { req, .. } = &job {
                        self.metrics.event_for(req.trace_id(), "engine.steal");
                    }
                    self.stats.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
            }
            if !self.running.load(Ordering::Acquire) {
                return None;
            }
            let q = self.shards[me].jobs.lock().expect("engine shard poisoned");
            if q.is_empty() && self.running.load(Ordering::Acquire) {
                // Park briefly; the timeout re-runs the steal sweep so jobs
                // landing only on sibling shards are still picked up.
                let _ = self.shards[me]
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(1))
                    .expect("engine shard poisoned");
            }
        }
    }

    fn complete_job(&self) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        if self.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.drain_lock.lock().expect("engine drain lock poisoned");
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut guard = self.drain_lock.lock().expect("engine drain lock poisoned");
        while self.in_flight.load(Ordering::Acquire) != 0 {
            let (g, _) = self
                .drained
                .wait_timeout(guard, Duration::from_millis(5))
                .expect("engine drain lock poisoned");
            guard = g;
        }
    }

    fn record_panic(&self, ws: &mut Workspace) {
        // The arena may be mid-mutation; a fresh one keeps the lease sound.
        *ws = Workspace::with_palette(ws.palette_kind());
        self.metrics.add(Counter::EnginePanics, 1);
        self.stats.panics.fetch_add(1, Ordering::Relaxed);
    }

    fn solve_one(
        &self,
        worker: usize,
        seq: usize,
        req: LabelRequest,
        ws: &mut Workspace,
    ) -> LabelResponse {
        let id = req.id;
        if let Some(deadline) = req.deadline {
            let now = Instant::now();
            if now > deadline {
                self.metrics.add(Counter::EngineDeadlineMisses, 1);
                self.metrics
                    .incident(req.trace_id(), "engine.deadline_miss");
                self.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
                return LabelResponse {
                    id,
                    batch_index: seq,
                    worker,
                    result: Err(SsgError::DeadlineExceeded {
                        missed_by: now - deadline,
                    }),
                };
            }
        }
        let start = Instant::now();
        let solved = {
            let _span = self.metrics.span("engine.solve");
            catch_unwind(AssertUnwindSafe(|| self.dispatch(&req, ws)))
        };
        let wall = start.elapsed();
        let result = match solved {
            Ok(r) => r.map(|(labeling, algorithm)| LabelOutcome {
                labeling,
                algorithm,
                wall,
            }),
            Err(payload) => {
                self.record_panic(ws);
                self.metrics.incident(req.trace_id(), "engine.panic");
                Err(SsgError::WorkerPanic(panic_message(payload)))
            }
        };
        LabelResponse {
            id,
            batch_index: seq,
            worker,
            result,
        }
    }

    /// Resolves the request's solver and runs it. Auto-routing mirrors
    /// [`SolverRegistry::auto_coloring`]'s tables, specialized to the
    /// instance shape the request already certifies.
    fn dispatch(
        &self,
        req: &LabelRequest,
        ws: &mut Workspace,
    ) -> Result<(Labeling, String), SsgError> {
        let sep = &req.sep;
        let m = &self.metrics;
        if let SolverHint::Named(name) = &req.hint {
            let problem = match &req.instance {
                RequestInstance::Graph(g) => Problem::graph(g, sep),
                RequestInstance::Interval(rep) => Problem::interval(rep, sep),
                RequestInstance::UnitInterval(rep) => Problem::unit_interval(rep, sep),
                RequestInstance::Tree(t) => Problem::tree(t, sep),
            };
            let labeling = self.registry.try_solve(name, &problem, ws, m)?;
            return Ok((labeling, name.clone()));
        }
        let tail_ones = (2..=sep.t()).all(|i| sep.delta(i) == 1);
        match &req.instance {
            RequestInstance::Graph(g) => {
                let out = self.registry.auto_coloring(g, sep, ws, m);
                Ok((out.labeling, out.algorithm.to_string()))
            }
            RequestInstance::Interval(rep) => {
                let name = if sep.is_all_ones() {
                    "interval_l1"
                } else if tail_ones {
                    "interval_approx_delta1"
                } else {
                    return Err(no_auto_route("interval", sep));
                };
                let labeling =
                    self.registry
                        .try_solve(name, &Problem::interval(rep, sep), ws, m)?;
                Ok((labeling, name.to_string()))
            }
            RequestInstance::UnitInterval(rep) => {
                if sep.is_all_ones() {
                    let problem = Problem::interval(rep.as_interval(), sep);
                    let labeling = self.registry.try_solve("interval_l1", &problem, ws, m)?;
                    Ok((labeling, "interval_l1".to_string()))
                } else if sep.t() == 2 {
                    let name = "unit_interval_l_delta1_delta2";
                    let problem = Problem::unit_interval(rep, sep);
                    let labeling = self.registry.try_solve(name, &problem, ws, m)?;
                    Ok((labeling, name.to_string()))
                } else if tail_ones {
                    let problem = Problem::interval(rep.as_interval(), sep);
                    let labeling =
                        self.registry
                            .try_solve("interval_approx_delta1", &problem, ws, m)?;
                    Ok((labeling, "interval_approx_delta1".to_string()))
                } else {
                    Err(no_auto_route("unit-interval", sep))
                }
            }
            RequestInstance::Tree(t) => {
                let name = if sep.is_all_ones() {
                    "tree_l1"
                } else if tail_ones {
                    "tree_approx_delta1"
                } else {
                    return Err(no_auto_route("tree", sep));
                };
                let labeling = self
                    .registry
                    .try_solve(name, &Problem::tree(t, sep), ws, m)?;
                Ok((labeling, name.to_string()))
            }
        }
    }
}

fn no_auto_route(shape: &str, sep: &SeparationVector) -> SsgError {
    SsgError::Spec(format!(
        "no {shape} solver for L({deltas:?}): only all-ones, delta1-then-ones, or (for unit \
         intervals) t = 2 vectors have auto routes — name a solver explicitly",
        deltas = sep.deltas()
    ))
}

fn worker_loop(inner: &Inner, me: usize, ws: &mut Workspace) {
    let m = &inner.metrics;
    while let Some(job) = inner.next_job(me) {
        if m.is_enabled() {
            m.gauge_set(
                Gauge::QueueDepth,
                inner.queued.load(Ordering::Relaxed) as u64,
            );
            m.gauge_set(
                Gauge::InFlight,
                inner.in_flight.load(Ordering::Acquire) as u64,
            );
        }
        match job {
            Job::Label {
                seq,
                req,
                tx,
                enqueued_at,
            } => {
                // Propagated requests join the caller's trace: events tag
                // the wire trace id and worker spans nest under the
                // caller's span from the other side of the socket.
                let (trace_id, parent_span) = req.trace.unwrap_or((req.id, 0));
                let _scope = m.trace_scope_with_parent(trace_id, parent_span);
                if let Some(t0) = enqueued_at {
                    m.observe(Hist::QueueWait, t0.elapsed());
                }
                m.event("engine.dequeue");
                let response = inner.solve_one(me, seq, *req, ws);
                // Count the completion before the send: once the caller has
                // received every response (run_batch), stats() must already
                // show them all as completed.
                inner.complete_job();
                m.event("engine.reply");
                let _ = tx.send(response);
                if let Some(t0) = enqueued_at {
                    m.observe(Hist::RequestLatency, t0.elapsed());
                }
            }
            Job::Task(f) => {
                if catch_unwind(AssertUnwindSafe(|| f(ws))).is_err() {
                    inner.record_panic(ws);
                }
                inner.complete_job();
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "solver panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssg_graph::generators;

    fn sep2() -> SeparationVector {
        SeparationVector::two(2, 1).unwrap()
    }

    #[test]
    fn batch_preserves_input_order_and_ids() {
        let engine = Engine::builder().workers(2).build();
        let reqs: Vec<LabelRequest> = (0..16u64)
            .map(|id| {
                LabelRequest::new(
                    1000 + id,
                    RequestInstance::Graph(generators::path(4 + id as usize)),
                    sep2(),
                )
            })
            .collect();
        let responses = engine.run_batch(reqs);
        assert_eq!(responses.len(), 16);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.batch_index, i);
            assert_eq!(r.id, 1000 + i as u64);
            let out = r.result.as_ref().expect("path labels fine");
            assert_eq!(out.labeling.len(), 4 + i);
        }
        let stats = engine.stats();
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.in_flight, 0);
        engine.shutdown();
    }

    #[test]
    fn batch_accepts_builder_constructed_graphs() {
        // Requests carrying graphs assembled edge-by-edge through the public
        // `GraphBuilder` must route and solve identically to generator-made
        // instances: the engine only ever sees finished CSR graphs.
        let engine = Engine::builder().workers(2).build();
        let reqs: Vec<LabelRequest> = (0..8u64)
            .map(|id| {
                let n = 5 + id as usize;
                let mut b = ssg_graph::GraphBuilder::with_capacity(n, n - 1);
                for v in 1..n as u32 {
                    b.add_edge(v - 1, v);
                }
                LabelRequest::new(id, RequestInstance::Graph(b.build().unwrap()), sep2())
            })
            .collect();
        let via_builder = engine.run_batch(reqs);
        let generated: Vec<LabelRequest> = (0..8u64)
            .map(|id| {
                LabelRequest::new(
                    id,
                    RequestInstance::Graph(generators::path(5 + id as usize)),
                    sep2(),
                )
            })
            .collect();
        let via_generator = engine.run_batch(generated);
        for (a, b) in via_builder.iter().zip(&via_generator) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.labeling.colors(), b.labeling.colors());
            assert_eq!(a.algorithm, b.algorithm);
        }
        engine.shutdown();
    }

    #[test]
    fn named_hint_routes_and_rejects() {
        let engine = Engine::builder().workers(1).build();
        let ok = LabelRequest::new(0, RequestInstance::Graph(generators::cycle(8)), sep2())
            .solver("greedy_bfs");
        let unknown = LabelRequest::new(1, RequestInstance::Graph(generators::cycle(8)), sep2())
            .solver("nope");
        let mismatch = LabelRequest::new(2, RequestInstance::Graph(generators::path(4)), sep2())
            .solver("tree_l1");
        let responses = engine.run_batch(vec![ok, unknown, mismatch]);
        assert!(responses[0].result.is_ok());
        assert!(matches!(
            responses[1].result,
            Err(SsgError::UnknownSolver { .. })
        ));
        assert!(matches!(
            responses[2].result,
            Err(SsgError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn auto_without_route_is_a_spec_error() {
        let engine = Engine::builder().workers(1).build();
        // L(3,2) on a tree has no auto route (neither all-ones nor tail-ones).
        let g = generators::random_tree(10, &mut rand_rng());
        let t = RootedTree::bfs_canonical(&g, 0).unwrap();
        let sep = SeparationVector::two(3, 2).unwrap();
        let responses = engine.run_batch(vec![LabelRequest::new(0, RequestInstance::Tree(t), sep)]);
        assert!(matches!(responses[0].result, Err(SsgError::Spec(_))));
    }

    fn rand_rng() -> impl rand::Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn batch_records_latency_histograms_and_span_chain() {
        let m = Metrics::with_tracing(4096);
        let engine = Engine::builder().workers(2).metrics(m.clone()).build();
        let reqs: Vec<LabelRequest> = (0..8u64)
            .map(|id| {
                LabelRequest::new(
                    id,
                    RequestInstance::Graph(generators::path(6 + id as usize)),
                    sep2(),
                )
            })
            .collect();
        let responses = engine.run_batch(reqs);
        assert!(responses.iter().all(|r| r.result.is_ok()));
        let snap = m.snapshot();
        // Every request shows up in queue-wait, end-to-end, and per-solver
        // latency distributions.
        assert_eq!(snap.hist(Hist::QueueWait).count(), 8);
        assert_eq!(snap.hist(Hist::RequestLatency).count(), 8);
        assert!(snap.hist(Hist::SolverSolve).count() >= 8);
        // Queue wait is bounded above by end-to-end latency.
        assert!(snap.hist(Hist::QueueWait).max() <= snap.hist(Hist::RequestLatency).max());
        // Worker loops sampled the gauges.
        assert!(snap.gauge_max(Gauge::InFlight) >= 1);
        // One request's full chain: enqueue -> dequeue -> solve span -> reply.
        let rec = m.recorder().unwrap();
        let names: Vec<&str> = rec.events_for(3).iter().map(|e| e.name).collect();
        for expected in [
            "engine.enqueue",
            "engine.dequeue",
            "engine.solve",
            "engine.reply",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        engine.shutdown();
    }

    #[test]
    fn propagated_trace_context_tags_the_chain_and_adopts_the_wire_parent() {
        let m = Metrics::with_tracing(4096);
        let engine = Engine::builder().workers(1).metrics(m.clone()).build();
        let wire_trace = 0xfeed_face_cafe_beefu64;
        let wire_parent = 12345u64;
        let req = LabelRequest::new(1, RequestInstance::Graph(generators::path(8)), sep2())
            .trace(wire_trace, wire_parent);
        assert_eq!(req.trace_id(), wire_trace);
        let responses = engine.run_batch(vec![req]);
        assert!(responses[0].result.is_ok());
        let rec = m.recorder().unwrap();
        // The whole chain is tagged with the wire trace id, not the local
        // request id.
        let events = rec.events_for(wire_trace);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        for expected in [
            "engine.enqueue",
            "engine.dequeue",
            "engine.solve",
            "engine.reply",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        assert!(
            rec.events_for(1).is_empty(),
            "request id lane must stay empty"
        );
        // The worker's solve span is parented on the caller's wire span.
        let solve = events.iter().find(|e| e.name == "engine.solve").unwrap();
        assert_eq!(solve.parent_id, wire_parent);
        engine.shutdown();
    }

    #[test]
    fn deadline_miss_records_an_incident_with_the_request_chain() {
        let m = Metrics::with_tracing(4096);
        let engine = Engine::builder().workers(1).metrics(m.clone()).build();
        let expired = LabelRequest::new(99, RequestInstance::Graph(generators::path(64)), sep2())
            .deadline(Instant::now() - Duration::from_millis(10));
        let responses = engine.run_batch(vec![expired]);
        assert!(matches!(
            responses[0].result,
            Err(SsgError::DeadlineExceeded { .. })
        ));
        let rec = m.recorder().unwrap();
        assert_eq!(rec.incident_count(), 1);
        let events = rec.events_for(99);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"engine.enqueue"), "{names:?}");
        assert!(names.contains(&"engine.deadline_miss"), "{names:?}");
        let miss = events
            .iter()
            .find(|e| e.name == "engine.deadline_miss")
            .unwrap();
        assert_eq!(miss.kind, ssg_telemetry::EventKind::Incident);
        // The dump carries the chain in schema form too.
        let dump = rec.to_json().render();
        assert!(dump.contains("\"ssg-trace/v1\""), "{dump}");
        assert!(dump.contains("engine.deadline_miss"), "{dump}");
        engine.shutdown();
    }

    #[test]
    fn solver_panic_records_an_incident() {
        let m = Metrics::with_tracing(1024);
        let engine = Engine::builder().workers(1).metrics(m.clone()).build();
        // A3 asserts t == 2, so a t=3 vector panics inside the solver.
        let sep3 = SeparationVector::new(vec![2, 1, 1]).unwrap();
        let mut rng = rand_rng();
        let src = ssg_intervals::gen::random_connected_unit_intervals(10, 0.5, &mut rng);
        let req = LabelRequest::new(7, RequestInstance::UnitInterval(src), sep3)
            .solver("unit_interval_l_delta1_delta2");
        let responses = engine.run_batch(vec![req]);
        assert!(matches!(responses[0].result, Err(SsgError::WorkerPanic(_))));
        let rec = m.recorder().unwrap();
        assert_eq!(rec.incident_count(), 1);
        assert!(rec.events_for(7).iter().any(|e| e.name == "engine.panic"));
        engine.shutdown();
    }

    #[test]
    fn execute_runs_closures_on_leased_workspaces() {
        let engine = Engine::builder().workers(2).build();
        let (tx, rx) = mpsc::channel();
        for i in 0..8u32 {
            let tx = tx.clone();
            engine
                .execute(move |ws| {
                    ws.begin_solve(&Metrics::disabled());
                    tx.send(i).unwrap();
                })
                .unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        engine.drain();
        assert_eq!(engine.stats().completed, 8);
    }
}
