//! The engine's core correctness contract: batch results are
//! **bit-identical** to sequential [`SolverRegistry`] solves, at every
//! worker count. Sharding, stealing, and workspace reuse must never
//! change a single color.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ssg_engine::{Engine, LabelRequest, RequestInstance, SolverHint};
use ssg_graph::generators;
use ssg_labeling::solver::Problem;
use ssg_labeling::{Labeling, SeparationVector, SolverRegistry, Workspace};
use ssg_telemetry::Metrics;
use ssg_tree::RootedTree;

/// A mixed bag of requests across every instance shape, seeded from one
/// proptest-chosen u64 so runs are reproducible.
fn build_requests(seed: u64, per_shape: usize) -> Vec<LabelRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reqs = Vec::new();
    let mut id = 0u64;
    for i in 0..per_shape {
        let n = 6 + (i % 7) * 4;

        let g = generators::random_tree(n, &mut rng);
        let tree = RootedTree::bfs_canonical(&g, 0).unwrap();
        reqs.push(
            LabelRequest::new(id, RequestInstance::Tree(tree), SeparationVector::all_ones(2))
                .solver("tree_l1"),
        );
        id += 1;

        let unit = ssg_intervals::gen::random_connected_unit_intervals(n, 0.5, &mut rng);
        reqs.push(
            LabelRequest::new(
                id,
                RequestInstance::Interval(unit.as_interval().clone()),
                SeparationVector::all_ones(2),
            )
            .solver("interval_l1"),
        );
        id += 1;

        reqs.push(
            LabelRequest::new(
                id,
                RequestInstance::UnitInterval(unit),
                SeparationVector::two(3, 1).unwrap(),
            )
            .solver("unit_interval_l_delta1_delta2"),
        );
        id += 1;

        let g = generators::random_connected(n, n + n / 2, &mut rng);
        reqs.push(LabelRequest::new(
            id,
            RequestInstance::Graph(g),
            SeparationVector::two(2, 1).unwrap(),
        ));
        id += 1;
    }
    reqs
}

/// The sequential reference: one registry, one warm workspace, same
/// dispatch rules as the engine.
fn sequential_reference(reqs: &[LabelRequest]) -> Vec<Labeling> {
    let registry = SolverRegistry::with_paper_algorithms();
    let mut ws = Workspace::new();
    let m = Metrics::disabled();
    reqs.iter()
        .map(|req| match (&req.hint, &req.instance) {
            (SolverHint::Named(name), RequestInstance::Tree(t)) => registry
                .try_solve(name, &Problem::tree(t, &req.sep), &mut ws, &m)
                .unwrap(),
            (SolverHint::Named(name), RequestInstance::Interval(rep)) => registry
                .try_solve(name, &Problem::interval(rep, &req.sep), &mut ws, &m)
                .unwrap(),
            (SolverHint::Named(name), RequestInstance::UnitInterval(rep)) => registry
                .try_solve(name, &Problem::unit_interval(rep, &req.sep), &mut ws, &m)
                .unwrap(),
            (SolverHint::Named(name), RequestInstance::Graph(g)) => registry
                .try_solve(name, &Problem::graph(g, &req.sep), &mut ws, &m)
                .unwrap(),
            (SolverHint::Auto, RequestInstance::Graph(g)) => {
                registry.auto_coloring(g, &req.sep, &mut ws, &m).labeling
            }
            (SolverHint::Auto, _) => unreachable!("parity requests pin non-graph solvers"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batches_match_sequential_solves_at_every_worker_count(seed in 0u64..u64::MAX) {
        let requests = build_requests(seed, 3);
        let expected = sequential_reference(&requests);
        for workers in [1usize, 2, 8] {
            let engine = Engine::builder().workers(workers).build();
            let responses = engine.run_batch(requests.clone());
            prop_assert_eq!(responses.len(), expected.len());
            for (response, want) in responses.iter().zip(&expected) {
                let out = response.result.as_ref().expect("parity solves never fail");
                prop_assert_eq!(
                    out.labeling.colors(),
                    want.colors(),
                    "workers={} batch_index={} solver={}",
                    workers,
                    response.batch_index,
                    out.algorithm
                );
            }
            engine.shutdown();
        }
    }
}
