//! Behavioral contracts of the engine: panic isolation, deadline expiry,
//! backpressure policies, and drain-on-shutdown ordering.

use ssg_engine::{Backpressure, Engine, LabelRequest, RequestInstance};
use ssg_error::SsgError;
use ssg_graph::generators;
use ssg_labeling::solver::{GreedyBfs, InstanceKind, Problem, Solver};
use ssg_labeling::{Labeling, SeparationVector, SolverRegistry, Workspace};
use ssg_telemetry::Metrics;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

fn sep2() -> SeparationVector {
    SeparationVector::two(2, 1).unwrap()
}

/// A solver that always panics — stands in for a genuine algorithm bug.
struct Boom;

impl Solver for Boom {
    fn name(&self) -> &'static str {
        "boom"
    }

    fn instance_kind(&self) -> InstanceKind {
        InstanceKind::Graph
    }

    fn solve_with(&self, _: &Problem, _: &mut Workspace, _: &Metrics) -> Labeling {
        panic!("boom solver detonated");
    }
}

/// Holds one worker busy until `release` fires, so tests can stage the
/// queue deterministically.
fn block_worker(engine: &Engine) -> (mpsc::Receiver<()>, mpsc::Sender<()>) {
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    engine
        .execute(move |_| {
            started_tx.send(()).unwrap();
            let _ = release_rx.recv();
        })
        .unwrap();
    started_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("worker never picked up the blocking job");
    (started_rx, release_tx)
}

#[test]
fn panics_are_isolated_per_request() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
    let mut registry = SolverRegistry::new();
    registry.register(Box::new(Boom));
    registry.register(Box::new(GreedyBfs));
    let engine = Engine::builder()
        .workers(1)
        .registry(Arc::new(registry))
        .build();

    let boom =
        LabelRequest::new(0, RequestInstance::Graph(generators::cycle(8)), sep2()).solver("boom");
    let fine = LabelRequest::new(1, RequestInstance::Graph(generators::cycle(8)), sep2())
        .solver("greedy_bfs");
    let responses = engine.run_batch(vec![boom, fine]);
    std::panic::set_hook(prev_hook);

    match &responses[0].result {
        Err(SsgError::WorkerPanic(msg)) => assert!(msg.contains("detonated"), "got: {msg}"),
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    // The same worker survived the panic and served the next request.
    assert!(responses[1].result.is_ok());
    assert_eq!(engine.stats().panics, 1);

    // And the engine keeps serving whole new batches afterwards.
    let again = engine.run_batch(vec![LabelRequest::new(
        2,
        RequestInstance::Graph(generators::path(5)),
        sep2(),
    )
    .solver("greedy_bfs")]);
    assert!(again[0].result.is_ok());
}

#[test]
fn expired_deadlines_are_reported_not_solved() {
    let engine = Engine::builder().workers(1).build();
    let (_started, release) = block_worker(&engine);

    let (tx, rx) = mpsc::channel();
    let req = LabelRequest::new(7, RequestInstance::Graph(generators::path(64)), sep2())
        .deadline(Instant::now() + Duration::from_millis(10));
    engine.submit(req, &tx).unwrap();
    std::thread::sleep(Duration::from_millis(40)); // let the deadline lapse in queue
    release.send(()).unwrap();

    let response = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(response.id, 7);
    match response.result {
        Err(SsgError::DeadlineExceeded { missed_by }) => {
            assert!(missed_by > Duration::ZERO);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(engine.stats().deadline_misses, 1);

    // An unexpired deadline still solves normally.
    let req = LabelRequest::new(8, RequestInstance::Graph(generators::path(8)), sep2())
        .timeout(Duration::from_secs(30));
    engine.submit(req, &tx).unwrap();
    let response = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(response.result.is_ok());
}

#[test]
fn fail_fast_reports_queue_full() {
    let engine = Engine::builder()
        .workers(1)
        .queue_capacity(1)
        .backpressure(Backpressure::FailFast)
        .build();
    let (_started, release) = block_worker(&engine);

    let (tx, rx) = mpsc::channel();
    let mk = |id| LabelRequest::new(id, RequestInstance::Graph(generators::path(4)), sep2());
    // Worker is busy; the single queue slot takes one request, then full.
    engine.submit(mk(0), &tx).unwrap();
    let err = engine.submit(mk(1), &tx).unwrap_err();
    assert!(matches!(err, SsgError::QueueFull));

    release.send(()).unwrap();
    let response = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(response.id, 0);
    assert!(response.result.is_ok());
}

#[test]
fn blocking_submit_waits_for_space() {
    let engine = Arc::new(
        Engine::builder()
            .workers(1)
            .queue_capacity(1)
            .backpressure(Backpressure::Block)
            .build(),
    );
    let (_started, release) = block_worker(&engine);

    let (tx, rx) = mpsc::channel();
    let mk = |id| LabelRequest::new(id, RequestInstance::Graph(generators::path(4)), sep2());
    engine.submit(mk(0), &tx).unwrap();

    let submitter = {
        let engine = Arc::clone(&engine);
        let tx = tx.clone();
        std::thread::spawn(move || engine.submit(mk(1), &tx))
    };
    std::thread::sleep(Duration::from_millis(20)); // submitter should be parked now
    release.send(()).unwrap();
    submitter.join().unwrap().unwrap();

    let mut ids: Vec<u64> = (0..2)
        .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap().id)
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1]);
    assert!(engine.stats().backpressure_waits >= 1);
}

#[test]
fn shutdown_drains_in_fifo_order() {
    let engine = Engine::builder().workers(1).build();
    let (_started, release) = block_worker(&engine);

    let (tx, rx) = mpsc::channel();
    for id in 0..10u64 {
        let req = LabelRequest::new(id, RequestInstance::Graph(generators::path(6)), sep2());
        engine.submit(req, &tx).unwrap();
    }
    drop(tx);
    release.send(()).unwrap();
    engine.shutdown(); // must finish all ten accepted requests first

    let served: Vec<u64> = rx.iter().map(|r| r.id).collect();
    assert_eq!(served, (0..10).collect::<Vec<_>>(), "single worker is FIFO");
}

#[test]
fn steals_rebalance_uneven_shards() {
    // Many workers, queue per shard, one batch: with round-robin submit and
    // uneven solve times the steal path gets exercised; at minimum the
    // counters stay coherent.
    let engine = Engine::builder().workers(4).queue_capacity(4).build();
    let reqs: Vec<LabelRequest> = (0..64u64)
        .map(|id| {
            LabelRequest::new(
                id,
                RequestInstance::Graph(generators::random_connected(
                    12,
                    18,
                    &mut seeded_rng(id),
                )),
                sep2(),
            )
        })
        .collect();
    let responses = engine.run_batch(reqs);
    assert_eq!(responses.len(), 64);
    assert!(responses.iter().all(|r| r.result.is_ok()));
    let stats = engine.stats();
    assert_eq!(stats.submitted, 64);
    assert_eq!(stats.completed, 64);
    assert_eq!(stats.in_flight, 0);
}

fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
