//! The `ssg bench` harness: runs the paper's five algorithms (A1–A5) on
//! deterministic synthetic workloads with telemetry enabled and builds a
//! machine-readable run report.
//!
//! The report's JSON schema is `"ssg-bench/v2"` (see
//! [`BenchReport::to_json`] and EXPERIMENTS.md): v2 adds a top-level
//! `histograms` section with log2-bucket latency summaries (per-algorithm
//! solve time, engine queue wait, end-to-end request latency).
//! [`diff_against_baseline`] still accepts `"ssg-bench/v1"` baselines — the
//! quantities it compares exist in both. Work counters are pure
//! functions of `(n, seed)`, so fixed-config runs reproduce them
//! bit-for-bit; wall times and histogram quantiles are
//! environment-dependent and belong to the committed
//! `BENCH_labeling.json` baseline only as an order-of-magnitude record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssg_graph::generators::random_bounded_degree_tree;
use ssg_intervals::gen::{corridor_unit_intervals, random_connected_intervals};
use ssg_labeling::solver::{default_registry, Problem};
use ssg_labeling::{PaletteKind, SeparationVector, Workspace};
use ssg_netsim::{simulate_corridor, simulate_corridor_incremental_with, DynamicsConfig, Policy};
use ssg_telemetry::json::Json;
use ssg_telemetry::report::{expect_one_of, ReportEnvelope};
use ssg_telemetry::{Counter, Hist, HistSnapshot, Metrics, Phase, Snapshot};
use ssg_tree::RootedTree;

/// The envelope stamped on every report this harness emits; readers accept
/// [`ACCEPTED_BASELINES`].
pub const BENCH_ENVELOPE: ReportEnvelope = ReportEnvelope::new("ssg-bench/v2");

/// Baseline schemas [`diff_against_baseline`] still reads — every quantity
/// the diff compares exists in both.
pub const ACCEPTED_BASELINES: [&str; 2] = ["ssg-bench/v1", "ssg-bench/v2"];

/// Configuration of one `ssg bench` run.
///
/// Non-exhaustive builder-style config: start from [`BenchConfig::default`]
/// and chain the field-named setters, so future knobs are not breaking
/// changes for downstream callers.
///
/// ```
/// use strongly_simplicial::bench::BenchConfig;
///
/// let cfg = BenchConfig::default().n(500).reps(2);
/// assert_eq!(cfg.n, 500);
/// assert_eq!(cfg.seed, BenchConfig::default().seed);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Vertex count per workload.
    pub n: usize,
    /// Timed repetitions per algorithm (counters are identical across
    /// repetitions; wall time is reported per repetition).
    pub reps: usize,
    /// RNG seed for the synthetic workloads.
    pub seed: u64,
    /// Solves per repetition on one shared [`Workspace`]: the first is the
    /// cold solve reported in `wall_ns`, the remaining `repeat - 1` reuse
    /// the warm arena and are reported in `warm_wall_ns`. `1` (the
    /// default) benches the cold path only.
    pub repeat: usize,
    /// Palette backend every benchmark workspace and engine pool uses
    /// (default [`PaletteKind::Bitset`]). The dedicated palette section
    /// always measures both backends regardless of this knob; spans are
    /// palette-invariant, so either setting diffs clean against the same
    /// committed baseline.
    pub palette: PaletteKind,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 4000,
            reps: 3,
            seed: 42,
            repeat: 1,
            palette: PaletteKind::default(),
        }
    }
}

impl BenchConfig {
    /// Sets the vertex count per workload.
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the timed repetitions per algorithm.
    #[must_use]
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps;
        self
    }

    /// Sets the workload RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the solves per repetition on one shared workspace.
    #[must_use]
    pub fn repeat(mut self, repeat: usize) -> Self {
        self.repeat = repeat;
        self
    }

    /// Sets the palette backend for every benchmark workspace.
    #[must_use]
    pub fn palette(mut self, palette: PaletteKind) -> Self {
        self.palette = palette;
        self
    }
}

/// Measured results of one algorithm on its workload.
#[derive(Debug, Clone)]
pub struct AlgorithmBench {
    /// Paper identifier (`"A1"` … `"A5"`).
    pub id: &'static str,
    /// Stable machine-readable algorithm name.
    pub name: &'static str,
    /// Human-readable workload description.
    pub workload: &'static str,
    /// Algorithm parameters, in render order (e.g. `("t", 2)`).
    pub params: Vec<(&'static str, u64)>,
    /// Vertex count of the workload actually run.
    pub n: usize,
    /// Largest color used by the produced labeling.
    pub span: u32,
    /// Wall time of each repetition's **cold** solve, in nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Wall time of every **warm** solve (`repeat - 1` per repetition, on
    /// the repetition's already-warm workspace). Empty when `repeat == 1`.
    pub warm_wall_ns: Vec<u64>,
    /// Telemetry totals of one cold solve (identical across repetitions).
    pub counters: Snapshot,
    /// Telemetry totals of one warm solve — the same work counters plus one
    /// `workspace_reuses`. `None` when `repeat == 1`.
    pub warm_counters: Option<Snapshot>,
    /// Solve-time distribution merged over every solve this row ran (cold
    /// and warm), as recorded by the registry's `solver_solve` histogram.
    pub solve_hist: HistSnapshot,
}

impl AlgorithmBench {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".into(), Json::Str(self.id.into())),
            ("name".into(), Json::Str(self.name.into())),
            ("workload".into(), Json::Str(self.workload.into())),
            (
                "params".into(),
                Json::Object(
                    self.params
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::U64(v)))
                        .collect(),
                ),
            ),
            ("n".into(), Json::U64(self.n as u64)),
            ("span".into(), Json::U64(self.span as u64)),
            (
                "wall_ns".into(),
                Json::Array(self.wall_ns.iter().map(|&ns| Json::U64(ns)).collect()),
            ),
            (
                "wall_ns_min".into(),
                Json::U64(self.wall_ns.iter().copied().min().unwrap_or(0)),
            ),
        ];
        if let Some(warm) = &self.warm_counters {
            fields.push((
                "warm_wall_ns".into(),
                Json::Array(self.warm_wall_ns.iter().map(|&ns| Json::U64(ns)).collect()),
            ));
            fields.push((
                "warm_wall_ns_min".into(),
                Json::U64(self.warm_wall_ns.iter().copied().min().unwrap_or(0)),
            ));
            fields.push(("warm_counters".into(), warm.counters_json()));
        }
        fields.push(("counters".into(), self.counters.counters_json()));
        Json::Object(fields)
    }
}

/// One worker-count row of the engine scaling benchmark.
#[derive(Debug, Clone, Copy)]
pub struct EngineBenchRow {
    /// Worker threads the engine ran with.
    pub workers: usize,
    /// Wall time of the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Requests per second (`requests / wall`).
    pub requests_per_sec: f64,
    /// Throughput relative to the 1-worker row.
    pub speedup_vs_1: f64,
    /// Jobs served off sibling shards during the run.
    pub steals: u64,
}

/// The `ssg bench` engine section: one standard batch workload pushed
/// through [`ssg_engine::Engine`] at increasing worker counts.
#[derive(Debug, Clone)]
pub struct EngineBench {
    /// Human-readable workload description.
    pub workload: &'static str,
    /// Requests per batch.
    pub requests: usize,
    /// Vertex count of each request's instance.
    pub request_n: usize,
    /// `std::thread::available_parallelism()` on the benchmarking host —
    /// the hardware ceiling any speedup claim must be read against.
    pub available_parallelism: usize,
    /// Whether every engine labeling was bit-identical to the sequential
    /// registry solve (the engine's correctness contract).
    pub spans_match_sequential: bool,
    /// One row per worker count, in ascending worker order.
    pub rows: Vec<EngineBenchRow>,
    /// Queue-wait distribution (enqueue to dequeue, nanoseconds) aggregated
    /// over every batch the sweep ran, warm-up batches included.
    pub queue_wait: HistSnapshot,
    /// End-to-end request latency distribution (enqueue through reply,
    /// nanoseconds) over the same batches.
    pub request_latency: HistSnapshot,
}

impl EngineBench {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("workload".into(), Json::Str(self.workload.into())),
            ("requests".into(), Json::U64(self.requests as u64)),
            ("request_n".into(), Json::U64(self.request_n as u64)),
            (
                "available_parallelism".into(),
                Json::U64(self.available_parallelism as u64),
            ),
            (
                "spans_match_sequential".into(),
                Json::Bool(self.spans_match_sequential),
            ),
            (
                "rows".into(),
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::Object(vec![
                                ("workers".into(), Json::U64(r.workers as u64)),
                                ("wall_ns".into(), Json::U64(r.wall_ns)),
                                ("requests_per_sec".into(), Json::F64(r.requests_per_sec)),
                                ("speedup_vs_1".into(), Json::F64(r.speedup_vs_1)),
                                ("steals".into(), Json::U64(r.steals)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The `ssg bench` incremental-recoloring section: one sparse corridor
/// churned at 5% per epoch, solved from scratch and via delta patching,
/// with span equality asserted epoch by epoch, plus a dirty-region scaling
/// probe at 1% vs 5% churn.
#[derive(Debug, Clone)]
pub struct IncrementalBench {
    /// Stations at epoch 0.
    pub stations: usize,
    /// Epochs simulated per run.
    pub epochs: usize,
    /// Per-epoch departure probability of the headline comparison.
    pub churn: f64,
    /// p50 epoch cost (rebuild + solve) of the from-scratch policy, ns.
    pub full_epoch_p50_ns: u64,
    /// p50 epoch cost (delta patch + region solve) incrementally, ns.
    pub incremental_epoch_p50_ns: u64,
    /// `full_epoch_p50_ns / incremental_epoch_p50_ns`.
    pub speedup_p50: f64,
    /// Whether every epoch's incremental span equaled the from-scratch
    /// optimal span (the certificate contract; must always be `true`).
    pub spans_match: bool,
    /// Sum of per-epoch spans — the deterministic quantity the baseline
    /// diff pins (same seed => bit-identical).
    pub span_sum: u64,
    /// Epochs the incremental run fell back to a full resolve.
    pub full_resolves: usize,
    /// Total `dirty_vertices` across a low-churn (1%) run.
    pub dirty_low_churn: u64,
    /// Total `dirty_vertices` across the 5% run: scales with churn, not n.
    pub dirty_high_churn: u64,
}

impl IncrementalBench {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("stations".into(), Json::U64(self.stations as u64)),
            ("epochs".into(), Json::U64(self.epochs as u64)),
            ("churn".into(), Json::F64(self.churn)),
            (
                "full_epoch_p50_ns".into(),
                Json::U64(self.full_epoch_p50_ns),
            ),
            (
                "incremental_epoch_p50_ns".into(),
                Json::U64(self.incremental_epoch_p50_ns),
            ),
            ("speedup_p50".into(), Json::F64(self.speedup_p50)),
            ("spans_match".into(), Json::Bool(self.spans_match)),
            ("span_sum".into(), Json::U64(self.span_sum)),
            ("full_resolves".into(), Json::U64(self.full_resolves as u64)),
            ("dirty_low_churn".into(), Json::U64(self.dirty_low_churn)),
            ("dirty_high_churn".into(), Json::U64(self.dirty_high_churn)),
        ])
    }
}

/// One palette backend's measurements in the [`PaletteBench`] head-to-head.
#[derive(Debug, Clone)]
pub struct PaletteBenchRow {
    /// Backend this row ran on.
    pub palette: PaletteKind,
    /// Span of the labeling (must agree across rows — the bit-identical
    /// contract).
    pub span: u32,
    /// Best cold-solve wall time across repetitions, ns.
    pub cold_wall_ns: u64,
    /// Best warm-solve wall time (solve #2+ on the same workspace), ns.
    pub warm_wall_ns: u64,
    /// Palette probes of one solve (identical cold vs warm and across
    /// repetitions; also identical across backends by construction).
    pub palette_probes: u64,
    /// Palette structure words read/written by one solve — the
    /// deterministic work counter over ALL palette traffic (extraction
    /// plus `link`/`unlink` bookkeeping).
    pub palette_word_scans: u64,
    /// The `pop`/`pop_where`/`pop_separated` slice of
    /// `palette_word_scans` — the probe-phase work the backends compete
    /// on (a list pop pays a full pointer splice, a bitset pop one word
    /// scan plus a bit clear).
    pub palette_pop_word_scans: u64,
    /// Per-solve pop-phase word traffic distribution (`palette_pop`
    /// histogram; one sample per solve, cold and warm merged).
    pub pop_hist: HistSnapshot,
}

/// The `ssg bench` palette section: the A3 corridor workload (the most
/// palette-probe-dominated inner loop in the suite — δ-gap `pop_where`
/// scans on every vertex) solved with both palette backends, cold and
/// warm, on otherwise identical inputs.
#[derive(Debug, Clone)]
pub struct PaletteBench {
    /// Human-readable workload description.
    pub workload: &'static str,
    /// Vertex count of the workload.
    pub n: usize,
    /// One row per backend, in [`PaletteKind::ALL`] order (list first).
    pub rows: Vec<PaletteBenchRow>,
    /// Whether every backend produced the same span (must be `true`).
    pub spans_match: bool,
    /// `list.palette_word_scans / bitset.palette_word_scans` — the
    /// deterministic work reduction over all palette traffic.
    pub word_scan_ratio: f64,
    /// `list.palette_pop_word_scans / bitset.palette_pop_word_scans` —
    /// the probe-phase work reduction (the headline number: link/unlink
    /// bookkeeping, which both backends pay near-identically, is
    /// excluded).
    pub pop_word_scan_ratio: f64,
}

impl PaletteBench {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("workload".into(), Json::Str(self.workload.into())),
            ("n".into(), Json::U64(self.n as u64)),
            (
                "rows".into(),
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::Object(vec![
                                ("palette".into(), Json::Str(r.palette.as_str().into())),
                                ("span".into(), Json::U64(u64::from(r.span))),
                                ("cold_wall_ns".into(), Json::U64(r.cold_wall_ns)),
                                ("warm_wall_ns".into(), Json::U64(r.warm_wall_ns)),
                                ("palette_probes".into(), Json::U64(r.palette_probes)),
                                ("palette_word_scans".into(), Json::U64(r.palette_word_scans)),
                                (
                                    "palette_pop_word_scans".into(),
                                    Json::U64(r.palette_pop_word_scans),
                                ),
                                ("palette_pop".into(), r.pop_hist.summary_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("spans_match".into(), Json::Bool(self.spans_match)),
            ("word_scan_ratio".into(), Json::F64(self.word_scan_ratio)),
            (
                "pop_word_scan_ratio".into(),
                Json::F64(self.pop_word_scan_ratio),
            ),
        ])
    }
}

/// A full `ssg bench` run: configuration plus one entry per algorithm.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration the run used.
    pub config: BenchConfig,
    /// Per-algorithm results, in paper order A1–A5.
    pub algorithms: Vec<AlgorithmBench>,
    /// Engine batch-throughput scaling section (`None` for reports
    /// produced before the engine existed).
    pub engine: Option<EngineBench>,
    /// Incremental-recoloring churn section (`None` for reports produced
    /// before the incremental path existed).
    pub incremental: Option<IncrementalBench>,
    /// Palette backend head-to-head section (`None` for reports produced
    /// before palette backends existed).
    pub palette: Option<PaletteBench>,
}

impl BenchReport {
    /// Renders the report as a `"ssg-bench/v2"` JSON value.
    ///
    /// Top-level keys, in order: `schema`, `config` (`n`, `reps`, `seed`,
    /// plus `repeat` when > 1), `algorithms` (array of objects with `id`,
    /// `name`, `workload`, `params`, `n`, `span`, `wall_ns`, `wall_ns_min`,
    /// `counters`, plus `warm_wall_ns` / `warm_wall_ns_min` /
    /// `warm_counters` when `repeat` > 1), `histograms` (new in v2:
    /// `solver_solve` keyed by algorithm id, plus `queue_wait` and
    /// `request_latency` when the engine section ran; each summary has
    /// `count`/`p50`/`p90`/`p99`/`max`/`mean` in nanoseconds), `engine`
    /// (batch throughput vs. worker count), `incremental` (churn
    /// recoloring), and `palette` (list-vs-bitset palette backend
    /// head-to-head on the A3 corridor workload).
    pub fn to_json(&self) -> Json {
        let mut config = vec![
            ("n".into(), Json::U64(self.config.n as u64)),
            ("reps".into(), Json::U64(self.config.reps as u64)),
            ("seed".into(), Json::U64(self.config.seed)),
        ];
        if self.config.repeat > 1 {
            config.push(("repeat".into(), Json::U64(self.config.repeat as u64)));
        }
        if self.config.palette != PaletteKind::default() {
            config.push((
                "palette".into(),
                Json::Str(self.config.palette.as_str().into()),
            ));
        }
        let solver_solve: Vec<(String, Json)> = self
            .algorithms
            .iter()
            .map(|a| (a.id.to_string(), a.solve_hist.summary_json()))
            .collect();
        let mut histograms = vec![("solver_solve".into(), Json::Object(solver_solve))];
        if let Some(engine) = &self.engine {
            histograms.push(("queue_wait".into(), engine.queue_wait.summary_json()));
            histograms.push((
                "request_latency".into(),
                engine.request_latency.summary_json(),
            ));
        }
        let mut fields = vec![
            ("config".into(), Json::Object(config)),
            (
                "algorithms".into(),
                Json::Array(self.algorithms.iter().map(|a| a.to_json()).collect()),
            ),
            ("histograms".into(), Json::Object(histograms)),
        ];
        if let Some(engine) = &self.engine {
            fields.push(("engine".into(), engine.to_json()));
        }
        if let Some(incremental) = &self.incremental {
            fields.push(("incremental".into(), incremental.to_json()));
        }
        if let Some(palette) = &self.palette {
            fields.push(("palette".into(), palette.to_json()));
        }
        BENCH_ENVELOPE.stamp(fields)
    }

    /// Renders a human-readable table (the non-JSON CLI output). With
    /// `repeat > 1` a `best warm` column compares the warm-workspace path
    /// against the cold solve.
    pub fn to_text(&self) -> String {
        let warm = self.config.repeat > 1;
        let mut out = format!(
            "ssg bench: n={} reps={} seed={}",
            self.config.n, self.config.reps, self.config.seed
        );
        if warm {
            out.push_str(&format!(" repeat={}", self.config.repeat));
        }
        out.push('\n');
        out.push_str(
            "id  algorithm                      span  best wall     peel_steps  palette_probes",
        );
        if warm {
            out.push_str("  best warm");
        }
        out.push('\n');
        for a in &self.algorithms {
            let best = a.wall_ns.iter().copied().min().unwrap_or(0);
            out.push_str(&format!(
                "{:<3} {:<30} {:>5} {:>9.3} ms {:>12} {:>15}",
                a.id,
                a.name,
                a.span,
                best as f64 / 1e6,
                a.counters.counter(Counter::PeelSteps),
                a.counters.counter(Counter::PaletteProbes),
            ));
            if warm {
                let best_warm = a.warm_wall_ns.iter().copied().min().unwrap_or(0);
                out.push_str(&format!(" {:>8.3} ms", best_warm as f64 / 1e6));
            }
            out.push('\n');
        }
        if let Some(engine) = &self.engine {
            out.push_str(&format!(
                "\nengine: {} ({} requests, n={}, host parallelism {})\n",
                engine.workload, engine.requests, engine.request_n, engine.available_parallelism
            ));
            out.push_str("workers  batch wall   requests/s  speedup  steals\n");
            for r in &engine.rows {
                out.push_str(&format!(
                    "{:>7} {:>9.3} ms {:>11.0} {:>7.2}x {:>7}\n",
                    r.workers,
                    r.wall_ns as f64 / 1e6,
                    r.requests_per_sec,
                    r.speedup_vs_1,
                    r.steals
                ));
            }
            out.push_str(&format!(
                "latency (ns): queue wait p50={} p99={}  end-to-end p50={} p99={}\n",
                engine.queue_wait.p50(),
                engine.queue_wait.p99(),
                engine.request_latency.p50(),
                engine.request_latency.p99(),
            ));
            if !engine.spans_match_sequential {
                out.push_str("WARNING: engine spans diverged from sequential solves\n");
            }
        }
        if let Some(inc) = &self.incremental {
            out.push_str(&format!(
                "\nincremental churn: {} stations, {} epochs, {:.0}% departures/epoch\n",
                inc.stations,
                inc.epochs,
                inc.churn * 100.0
            ));
            out.push_str(&format!(
                "epoch solve p50: full {:>9.3} ms  incremental {:>9.3} ms  speedup {:.2}x\n",
                inc.full_epoch_p50_ns as f64 / 1e6,
                inc.incremental_epoch_p50_ns as f64 / 1e6,
                inc.speedup_p50,
            ));
            out.push_str(&format!(
                "full resolves: {}/{} epochs  dirty vertices: {} @1% vs {} @5% churn\n",
                inc.full_resolves, inc.epochs, inc.dirty_low_churn, inc.dirty_high_churn,
            ));
            if !inc.spans_match {
                out.push_str("WARNING: incremental spans diverged from from-scratch solves\n");
            }
        }
        if let Some(pal) = &self.palette {
            out.push_str(&format!(
                "\npalette backends: {} (n={})\n",
                pal.workload, pal.n
            ));
            out.push_str(
                "backend  span  cold          warm          probes      word scans      pop scans\n",
            );
            for r in &pal.rows {
                out.push_str(&format!(
                    "{:<7} {:>5} {:>9.3} ms {:>9.3} ms {:>11} {:>15} {:>14}\n",
                    r.palette.as_str(),
                    r.span,
                    r.cold_wall_ns as f64 / 1e6,
                    r.warm_wall_ns as f64 / 1e6,
                    r.palette_probes,
                    r.palette_word_scans,
                    r.palette_pop_word_scans,
                ));
            }
            out.push_str(&format!(
                "word-scan reduction (list/bitset): total {:.2}x, pop phase {:.2}x\n",
                pal.word_scan_ratio, pal.pop_word_scan_ratio
            ));
            if !pal.spans_match {
                out.push_str("WARNING: palette backends produced different spans\n");
            }
        }
        out
    }
}

/// Result of diffing a fresh [`BenchReport`] against a committed baseline
/// report (see `BENCH_labeling.json` and `scripts/bench_diff.sh`).
///
/// Only *deterministic* quantities are compared — per-algorithm spans and
/// the instance sizes they were measured on. Wall times and counters are
/// machine- or schema-sensitive and deliberately excluded, so a clean diff
/// means "same answers", not "same speed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Algorithm rows successfully matched against the baseline.
    pub checked: usize,
    /// Human-readable descriptions of every drift found (empty when clean).
    pub drifts: Vec<String>,
}

impl BaselineDiff {
    /// Whether the fresh report agrees with the baseline on every row.
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
    }

    /// One-paragraph summary suitable for CLI output.
    pub fn render(&self) -> String {
        if self.is_clean() {
            format!("baseline compare: {} algorithm rows match\n", self.checked)
        } else {
            let mut out = format!(
                "baseline compare: {} drift(s) across {} row(s):\n",
                self.drifts.len(),
                self.checked
            );
            for d in &self.drifts {
                out.push_str("  ");
                out.push_str(d);
                out.push('\n');
            }
            out
        }
    }
}

/// Diffs `report` against a parsed `ssg-bench/v1` **or** `ssg-bench/v2`
/// baseline document — every quantity the diff compares exists in both
/// schemas, so a pre-histogram baseline stays usable.
///
/// Returns `Err` when the baseline is structurally unusable (wrong schema,
/// missing sections, or a config mismatch that makes spans incomparable);
/// returns `Ok` with a [`BaselineDiff`] otherwise. Span disagreement on any
/// algorithm row, or a row present on one side only, is a drift.
pub fn diff_against_baseline(
    report: &BenchReport,
    baseline: &Json,
) -> Result<BaselineDiff, String> {
    expect_one_of(baseline, &ACCEPTED_BASELINES)?;
    let cfg = baseline
        .get("config")
        .ok_or_else(|| "baseline has no 'config' section".to_string())?;
    for (key, fresh) in [
        ("n", report.config.n as u64),
        ("reps", report.config.reps as u64),
        ("seed", report.config.seed),
    ] {
        let base = cfg
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("baseline config is missing '{key}'"))?;
        if base != fresh {
            return Err(format!(
                "config mismatch on '{key}': baseline {base}, this run {fresh} \
                 (rerun with matching --n/--reps/--seed)"
            ));
        }
    }
    let rows = baseline
        .get("algorithms")
        .and_then(Json::as_array)
        .ok_or_else(|| "baseline has no 'algorithms' array".to_string())?;
    let mut drifts = Vec::new();
    let mut checked = 0usize;
    let mut base_ids: Vec<&str> = Vec::new();
    for row in rows {
        let id = row
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| "baseline algorithm row has no 'id'".to_string())?;
        base_ids.push(id);
        let Some(fresh) = report.algorithms.iter().find(|a| a.id == id) else {
            drifts.push(format!("{id}: present in baseline, absent from this run"));
            continue;
        };
        checked += 1;
        for (key, got) in [("span", fresh.span as u64), ("n", fresh.n as u64)] {
            let want = row
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("baseline row {id} has no '{key}'"))?;
            if want != got {
                drifts.push(format!("{id}: {key} {got} != baseline {want}"));
            }
        }
    }
    for a in &report.algorithms {
        if !base_ids.contains(&a.id) {
            drifts.push(format!(
                "{}: present in this run, absent from baseline",
                a.id
            ));
        }
    }
    // The incremental churn section is deterministic per seed, so its spans
    // are pinned too — but only when both sides carry the section, keeping
    // pre-incremental baselines usable.
    if let (Some(base_inc), Some(fresh)) = (baseline.get("incremental"), &report.incremental) {
        checked += 1;
        for (key, got) in [
            ("stations", fresh.stations as u64),
            ("epochs", fresh.epochs as u64),
            ("span_sum", fresh.span_sum),
        ] {
            let want = base_inc
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("baseline incremental section has no '{key}'"))?;
            if want != got {
                drifts.push(format!("incremental: {key} {got} != baseline {want}"));
            }
        }
        if !fresh.spans_match {
            drifts.push("incremental: spans diverged from from-scratch solves".into());
        }
    }
    // The palette section's spans are pinned the same way (deterministic
    // per seed, identical across backends); wall times and word-scan
    // counts are diagnostics, not gates. Skipped when either side
    // predates the section.
    if let (Some(base_pal), Some(fresh)) = (baseline.get("palette"), &report.palette) {
        checked += 1;
        let base_rows = base_pal
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| "baseline palette section has no 'rows'".to_string())?;
        for row in base_rows {
            let backend = row
                .get("palette")
                .and_then(Json::as_str)
                .ok_or_else(|| "baseline palette row has no 'palette'".to_string())?;
            let Some(fresh_row) = fresh.rows.iter().find(|r| r.palette.as_str() == backend) else {
                drifts.push(format!(
                    "palette/{backend}: present in baseline, absent from this run"
                ));
                continue;
            };
            let want = row
                .get("span")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("baseline palette row {backend} has no 'span'"))?;
            if want != u64::from(fresh_row.span) {
                drifts.push(format!(
                    "palette/{backend}: span {} != baseline {want}",
                    fresh_row.span
                ));
            }
        }
        if !fresh.spans_match {
            drifts.push("palette: backends produced different spans".into());
        }
    }
    Ok(BaselineDiff { checked, drifts })
}

/// One timed solve through the registry on `ws`, on a fresh enabled
/// [`Metrics`] handle under [`Phase::Run`]. Returns `(span, snapshot)`;
/// the output buffer is recycled into `ws`.
fn timed_solve(name: &str, problem: &Problem<'_>, ws: &mut Workspace) -> (u32, Snapshot) {
    let metrics = Metrics::enabled();
    let span;
    {
        let _run = metrics.time(Phase::Run);
        let lab = default_registry().solve(name, problem, ws, &metrics);
        span = lab.span();
        ws.recycle(lab);
    }
    (span, metrics.snapshot())
}

/// Runs one algorithm `cfg.reps` times. Each repetition starts from a cold
/// [`Workspace`] (that solve lands in `wall_ns`) and then reuses it for
/// `cfg.repeat - 1` warm solves (landing in `warm_wall_ns`).
fn bench_one(
    cfg: &BenchConfig,
    id: &'static str,
    name: &'static str,
    workload: &'static str,
    params: Vec<(&'static str, u64)>,
    n: usize,
    problem: &Problem<'_>,
) -> AlgorithmBench {
    let mut wall_ns = Vec::with_capacity(cfg.reps);
    let mut warm_wall_ns = Vec::new();
    let mut span = 0u32;
    let mut counters = Snapshot::default();
    let mut warm_counters = None;
    let mut solve_hist = HistSnapshot::default();
    for _ in 0..cfg.reps.max(1) {
        let mut ws = Workspace::with_palette(cfg.palette);
        let (cold_span, cold_snap) = timed_solve(name, problem, &mut ws);
        span = cold_span;
        wall_ns.push(cold_snap.phase_ns(Phase::Run));
        solve_hist.merge(&cold_snap.hist(Hist::SolverSolve));
        counters = cold_snap;
        for _ in 1..cfg.repeat.max(1) {
            let (warm_span, warm_snap) = timed_solve(name, problem, &mut ws);
            debug_assert_eq!(warm_span, span, "warm solves must be bit-identical");
            warm_wall_ns.push(warm_snap.phase_ns(Phase::Run));
            solve_hist.merge(&warm_snap.hist(Hist::SolverSolve));
            warm_counters = Some(warm_snap);
        }
    }
    AlgorithmBench {
        id,
        name,
        workload,
        params,
        n,
        span,
        wall_ns,
        warm_wall_ns,
        counters,
        warm_counters,
        solve_hist,
    }
}

/// Worker counts the engine section sweeps.
const ENGINE_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Batch size of the engine workload.
const ENGINE_REQUESTS: usize = 64;

/// Runs the standard corridor batch through [`ssg_engine::Engine`] at each
/// worker count in 1, 2, 4, 8, verifying every labeling
/// against a sequential registry solve. Scaling numbers are only as good
/// as the host: `available_parallelism` records the hardware ceiling
/// (on a single-core host every row sits near 1.0x by construction).
pub fn run_engine_benchmark(cfg: &BenchConfig) -> EngineBench {
    use ssg_engine::{Engine, LabelRequest, RequestInstance};

    let request_n = (cfg.n / 16).clamp(32, 512);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x656e67);
    let sep = SeparationVector::all_ones(2);
    let reps: Vec<_> = (0..ENGINE_REQUESTS)
        .map(|_| corridor_unit_intervals(request_n, 4, &mut rng))
        .collect();

    // Sequential reference spans on one warm workspace.
    let mut ws = Workspace::with_palette(cfg.palette);
    let sequential: Vec<Vec<u32>> = reps
        .iter()
        .map(|rep| {
            let lab = default_registry().solve(
                "interval_l1",
                &Problem::interval(rep.as_interval(), &sep),
                &mut ws,
                &Metrics::disabled(),
            );
            let colors = lab.colors().to_vec();
            ws.recycle(lab);
            colors
        })
        .collect();

    let make_batch = || -> Vec<LabelRequest> {
        reps.iter()
            .enumerate()
            .map(|(i, rep)| {
                LabelRequest::new(
                    i as u64,
                    RequestInstance::Interval(rep.as_interval().clone()),
                    sep.clone(),
                )
                .solver("interval_l1")
            })
            .collect()
    };

    let mut spans_match = true;
    let mut rows = Vec::with_capacity(ENGINE_WORKER_COUNTS.len());
    let mut base_wall_ns = 0u64;
    // One shared handle across the whole sweep: queue-wait and end-to-end
    // latency distributions aggregate every batch (warm-up included).
    let metrics = Metrics::enabled();
    for workers in ENGINE_WORKER_COUNTS {
        let engine = Engine::builder()
            .workers(workers)
            .palette(cfg.palette)
            .metrics(metrics.clone())
            .build();
        // One warm-up batch so thread spawn and arena growth are off the
        // clock, then the timed batch.
        let _ = engine.run_batch(make_batch());
        let start = std::time::Instant::now();
        let responses = engine.run_batch(make_batch());
        let wall = start.elapsed();
        for (response, want) in responses.iter().zip(&sequential) {
            match &response.result {
                Ok(out) if out.labeling.colors() == want.as_slice() => {}
                _ => spans_match = false,
            }
        }
        let steals = engine.stats().steals;
        engine.shutdown();
        let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        if workers == 1 {
            base_wall_ns = wall_ns;
        }
        rows.push(EngineBenchRow {
            workers,
            wall_ns,
            requests_per_sec: ENGINE_REQUESTS as f64 / wall.as_secs_f64().max(1e-12),
            speedup_vs_1: base_wall_ns as f64 / wall_ns.max(1) as f64,
            steals,
        });
    }
    let snap = metrics.snapshot();
    EngineBench {
        workload: "corridor unit-interval batch via interval_l1",
        requests: ENGINE_REQUESTS,
        request_n,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        spans_match_sequential: spans_match,
        rows,
        queue_wait: snap.hist(Hist::QueueWait),
        request_latency: snap.hist(Hist::RequestLatency),
    }
}

/// Epochs simulated by the incremental-recoloring benchmark.
const INCREMENTAL_EPOCHS: usize = 12;
/// Headline per-epoch departure probability (the acceptance-gate 5%).
const INCREMENTAL_CHURN: f64 = 0.05;
/// Low-churn probe used to show `DirtyVertices` scales with churn, not n.
const INCREMENTAL_LOW_CHURN: f64 = 0.01;

/// Exact median of raw nanosecond samples (midpoint average when the
/// count is even); 0 for an empty slice.
fn exact_median_ns(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2
    } else {
        sorted[mid]
    }
}

/// The corridor the incremental benchmark churns: sparse (3 length units
/// per station, hearing radii in 1..2) so distance-2 balls stay local and
/// the region solver rarely trips its size fallback.
fn incremental_dynamics(stations: usize, p_depart: f64) -> DynamicsConfig {
    let arrivals_max = ((stations as f64 * p_depart * 2.0).ceil() as usize).max(1);
    DynamicsConfig::default()
        .initial(stations)
        .epochs(INCREMENTAL_EPOCHS)
        .p_depart(p_depart)
        .arrivals_max(arrivals_max)
        .corridor_len(stations as f64 * 3.0)
        .range_min(1.0)
        .range_max(2.0)
        .t(2)
}

/// Churns one corridor twice from the same seed — from-scratch
/// [`Policy::OptimalL1`] vs. the delta-patching incremental path — and
/// compares per-epoch solve cost and (exactly) per-epoch spans. A second
/// incremental run at 1% churn probes `DirtyVertices` scaling.
///
/// The station count is scaled off `cfg.n` (x20, clamped to 200..=10_000)
/// so the default config exercises the acceptance-gate n=10,000 corridor
/// while test configs stay fast.
fn run_incremental_benchmark(cfg: &BenchConfig) -> IncrementalBench {
    let stations = (cfg.n * 20).clamp(200, 10_000);
    let seed = cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(7);

    let full = simulate_corridor(
        incremental_dynamics(stations, INCREMENTAL_CHURN),
        Policy::OptimalL1,
        &mut StdRng::seed_from_u64(seed),
    );
    let metrics_high = Metrics::enabled();
    let inc = simulate_corridor_incremental_with(
        incremental_dynamics(stations, INCREMENTAL_CHURN),
        &mut StdRng::seed_from_u64(seed),
        &metrics_high,
    );
    let metrics_low = Metrics::enabled();
    let _ = simulate_corridor_incremental_with(
        incremental_dynamics(stations, INCREMENTAL_LOW_CHURN),
        &mut StdRng::seed_from_u64(seed),
        &metrics_low,
    );

    // Exact medians over the raw per-epoch samples: the histogram's
    // power-of-two buckets are far too coarse for a speedup ratio.
    let full_p50 = exact_median_ns(&full.epoch_solve_ns);
    let inc_p50 = exact_median_ns(&inc.epoch_solve_ns);
    IncrementalBench {
        stations,
        epochs: INCREMENTAL_EPOCHS,
        churn: INCREMENTAL_CHURN,
        full_epoch_p50_ns: full_p50,
        incremental_epoch_p50_ns: inc_p50,
        speedup_p50: full_p50 as f64 / inc_p50.max(1) as f64,
        spans_match: full.epoch_spans == inc.epoch_spans,
        span_sum: inc.epoch_spans.iter().map(|&s| u64::from(s)).sum(),
        full_resolves: inc.full_resolves,
        dirty_low_churn: metrics_low.snapshot().counter(Counter::DirtyVertices),
        dirty_high_churn: metrics_high.snapshot().counter(Counter::DirtyVertices),
    }
}

/// Runs the palette backend head-to-head on the A3 corridor workload.
///
/// Both backends solve the *same* generated instance; each repetition is
/// one cold solve on a fresh [`Workspace::with_palette`] followed by one
/// warm solve on the same arena. Spans must agree bit-for-bit; the
/// deterministic `palette_word_scans` / `palette_pop_word_scans`
/// counters (and the wall times) are what differ.
pub fn run_palette_benchmark(cfg: &BenchConfig) -> PaletteBench {
    let n = cfg.n.max(2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let unit_rep = corridor_unit_intervals(n, 4, &mut rng);
    let d1_d2 = SeparationVector::two(5, 2).expect("valid (5,2)");
    let problem = Problem::unit_interval(&unit_rep, &d1_d2);

    let rows: Vec<PaletteBenchRow> = PaletteKind::ALL
        .into_iter()
        .map(|palette| {
            let mut cold_wall = u64::MAX;
            let mut warm_wall = u64::MAX;
            let mut span = 0u32;
            let mut probes = 0u64;
            let mut word_scans = 0u64;
            let mut pop_word_scans = 0u64;
            let mut pop_hist = HistSnapshot::default();
            for _ in 0..cfg.reps.max(1) {
                let mut ws = Workspace::with_palette(palette);
                let (cold_span, cold) =
                    timed_solve("unit_interval_l_delta1_delta2", &problem, &mut ws);
                let (warm_span, warm) =
                    timed_solve("unit_interval_l_delta1_delta2", &problem, &mut ws);
                debug_assert_eq!(cold_span, warm_span, "warm solves must be bit-identical");
                span = cold_span;
                cold_wall = cold_wall.min(cold.phase_ns(Phase::Run));
                warm_wall = warm_wall.min(warm.phase_ns(Phase::Run));
                probes = cold.counter(Counter::PaletteProbes);
                word_scans = cold.counter(Counter::PaletteWordScans);
                // One `palette_pop` sample per solve, so the cold
                // snapshot's exact hist sum IS the cold pop-phase tally.
                pop_word_scans = cold.hist(Hist::PalettePop).sum;
                pop_hist.merge(&cold.hist(Hist::PalettePop));
                pop_hist.merge(&warm.hist(Hist::PalettePop));
            }
            PaletteBenchRow {
                palette,
                span,
                cold_wall_ns: cold_wall,
                warm_wall_ns: warm_wall,
                palette_probes: probes,
                palette_word_scans: word_scans,
                palette_pop_word_scans: pop_word_scans,
                pop_hist,
            }
        })
        .collect();

    let spans_match = rows.windows(2).all(|w| w[0].span == w[1].span);
    let scans_of = |kind: PaletteKind, f: fn(&PaletteBenchRow) -> u64| {
        rows.iter().find(|r| r.palette == kind).map_or(0, f)
    };
    let list_scans = scans_of(PaletteKind::List, |r| r.palette_word_scans);
    let bitset_scans = scans_of(PaletteKind::Bitset, |r| r.palette_word_scans);
    let list_pop = scans_of(PaletteKind::List, |r| r.palette_pop_word_scans);
    let bitset_pop = scans_of(PaletteKind::Bitset, |r| r.palette_pop_word_scans);
    PaletteBench {
        workload: "tight unit-interval corridor (k=4) via unit_interval_l_delta1_delta2",
        n,
        rows,
        spans_match,
        word_scan_ratio: list_scans as f64 / bitset_scans.max(1) as f64,
        pop_word_scan_ratio: list_pop as f64 / bitset_pop.max(1) as f64,
    }
}

/// Runs all five paper algorithms on deterministic workloads derived from
/// `cfg` and returns the aggregated report.
///
/// Workloads: A1/A2 share a random connected interval graph, A3 uses a
/// tight unit-interval corridor (the hardest case for Theorem 3), A4/A5
/// share a random degree-bounded tree. Every solve is dispatched through
/// [`default_registry`] by the algorithm's `name` — report rows are
/// replayable as `registry.solve(name, problem, ws, metrics)`.
pub fn run_benchmarks(cfg: &BenchConfig) -> BenchReport {
    let n = cfg.n.max(2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let interval_rep = random_connected_intervals(n, 0.5, 1.0, 3.0, &mut rng);
    let unit_rep = corridor_unit_intervals(n, 4, &mut rng);
    let tree_graph = random_bounded_degree_tree(n, 4, &mut rng);
    let tree = RootedTree::bfs_canonical(&tree_graph, 0).expect("generator returns a tree");

    let ones_t2 = SeparationVector::all_ones(2);
    let d1_then_one = SeparationVector::delta1_then_ones(4, 2).expect("valid (4,1)");
    let d1_d2 = SeparationVector::two(5, 2).expect("valid (5,2)");

    let algorithms = vec![
        bench_one(
            cfg,
            "A1",
            "interval_l1",
            "random connected interval graph",
            vec![("t", 2)],
            n,
            &Problem::interval(&interval_rep, &ones_t2),
        ),
        bench_one(
            cfg,
            "A2",
            "interval_approx_delta1",
            "random connected interval graph",
            vec![("t", 2), ("delta1", 4)],
            n,
            &Problem::interval(&interval_rep, &d1_then_one),
        ),
        bench_one(
            cfg,
            "A3",
            "unit_interval_l_delta1_delta2",
            "tight unit-interval corridor (k=4)",
            vec![("delta1", 5), ("delta2", 2)],
            n,
            &Problem::unit_interval(&unit_rep, &d1_d2),
        ),
        bench_one(
            cfg,
            "A4",
            "tree_l1",
            "random degree-<=4 tree",
            vec![("t", 2)],
            n,
            &Problem::tree(&tree, &ones_t2),
        ),
        bench_one(
            cfg,
            "A5",
            "tree_approx_delta1",
            "random degree-<=4 tree",
            vec![("t", 2), ("delta1", 4)],
            n,
            &Problem::tree(&tree, &d1_then_one),
        ),
    ];
    BenchReport {
        config: *cfg,
        algorithms,
        engine: Some(run_engine_benchmark(cfg)),
        incremental: Some(run_incremental_benchmark(cfg)),
        palette: Some(run_palette_benchmark(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BenchConfig {
        BenchConfig::default().n(120).reps(2).seed(7).repeat(1)
    }

    #[test]
    fn report_covers_all_five_algorithms() {
        let report = run_benchmarks(&small());
        let ids: Vec<&str> = report.algorithms.iter().map(|a| a.id).collect();
        assert_eq!(ids, ["A1", "A2", "A3", "A4", "A5"]);
        for a in &report.algorithms {
            assert_eq!(a.wall_ns.len(), 2, "{}", a.id);
            assert!(
                a.counters.counter(Counter::PeelSteps) >= a.n as u64,
                "{} must record at least one peel step per vertex",
                a.id
            );
            assert!(
                a.counters.counter(Counter::PaletteProbes) > 0,
                "{} must record palette probes",
                a.id
            );
        }
    }

    #[test]
    fn counters_are_reproducible_across_runs() {
        let a = run_benchmarks(&small());
        let b = run_benchmarks(&small());
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            assert_eq!(x.span, y.span, "{}", x.id);
            for c in Counter::ALL {
                assert_eq!(
                    x.counters.counter(c),
                    y.counters.counter(c),
                    "{} {}",
                    x.id,
                    c.name()
                );
            }
        }
    }

    #[test]
    fn baseline_diff_is_clean_against_own_rendering() {
        let report = run_benchmarks(&small());
        let rendered = report.to_json().render_pretty();
        let baseline = Json::parse(&rendered).unwrap();
        let diff = diff_against_baseline(&report, &baseline).unwrap();
        assert!(diff.is_clean(), "{}", diff.render());
        // 5 algorithm rows + the incremental churn and palette sections.
        assert_eq!(diff.checked, 7);
        assert!(diff.render().contains("7 algorithm rows match"));
    }

    #[test]
    fn baseline_diff_flags_span_drift_and_missing_rows() {
        let report = run_benchmarks(&small());
        let mut doctored = report.clone();
        doctored.algorithms[0].span += 1;
        doctored.algorithms.pop();
        let baseline = Json::parse(&doctored.to_json().render_pretty()).unwrap();
        let diff = diff_against_baseline(&report, &baseline).unwrap();
        assert_eq!(diff.drifts.len(), 2, "{:?}", diff.drifts);
        assert!(diff.drifts[0].contains("A1: span"));
        assert!(diff.drifts[1].contains("A5"));
        assert!(!diff.is_clean());
    }

    #[test]
    fn baseline_diff_rejects_unusable_baselines() {
        let report = run_benchmarks(&small());
        let err = diff_against_baseline(&report, &Json::parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("schema"));
        let other_seed = run_benchmarks(&BenchConfig::default().n(120).reps(2).seed(8));
        let baseline = Json::parse(&other_seed.to_json().render_pretty()).unwrap();
        let err = diff_against_baseline(&report, &baseline).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn report_json_has_v2_schema_and_histograms() {
        let report = run_benchmarks(&small());
        let doc = Json::parse(&report.to_json().render_pretty()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ssg-bench/v2")
        );
        let hists = doc.get("histograms").expect("v2 has a histograms section");
        let solver = hists.get("solver_solve").expect("per-algorithm summaries");
        for id in ["A1", "A2", "A3", "A4", "A5"] {
            let row = solver.get(id).unwrap_or_else(|| panic!("{id} summary"));
            for key in ["count", "p50", "p90", "p99", "max", "mean"] {
                assert!(row.get(key).is_some(), "{id} missing {key}");
            }
            // One cold solve per repetition lands in the histogram.
            assert_eq!(row.get("count").and_then(Json::as_u64), Some(2), "{id}");
        }
        for section in ["queue_wait", "request_latency"] {
            let count = hists
                .get(section)
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{section} summary"));
            // Warm-up + timed batch at each of the four worker counts.
            assert_eq!(count, 8 * ENGINE_REQUESTS as u64, "{section}");
        }
    }

    #[test]
    fn baseline_diff_accepts_v1_baselines() {
        let report = run_benchmarks(&small());
        let v1 = report
            .to_json()
            .render_pretty()
            .replace("ssg-bench/v2", "ssg-bench/v1");
        let diff = diff_against_baseline(&report, &Json::parse(&v1).unwrap()).unwrap();
        assert!(diff.is_clean(), "{}", diff.render());
        let v3 = report
            .to_json()
            .render_pretty()
            .replace("ssg-bench/v2", "ssg-bench/v3");
        let err = diff_against_baseline(&report, &Json::parse(&v3).unwrap()).unwrap_err();
        assert!(err.contains("ssg-bench/v3"), "{err}");
    }

    #[test]
    fn engine_section_scales_and_matches_sequential() {
        let bench = run_engine_benchmark(&small());
        assert_eq!(bench.requests, ENGINE_REQUESTS);
        assert!(bench.spans_match_sequential);
        assert!(bench.available_parallelism >= 1);
        let workers: Vec<usize> = bench.rows.iter().map(|r| r.workers).collect();
        assert_eq!(workers, ENGINE_WORKER_COUNTS);
        for row in &bench.rows {
            assert!(row.wall_ns > 0, "workers={}", row.workers);
            assert!(row.requests_per_sec > 0.0);
            assert!(row.speedup_vs_1 > 0.0);
        }
        assert!((bench.rows[0].speedup_vs_1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_section_matches_from_scratch_and_scales_with_churn() {
        let report = run_benchmarks(&small());
        let inc = report.incremental.as_ref().expect("incremental section");
        assert_eq!(
            inc.stations, 2400,
            "n=120 scales to a 2400-station corridor"
        );
        assert_eq!(inc.epochs, INCREMENTAL_EPOCHS);
        assert!(
            inc.spans_match,
            "every incremental epoch span must equal the from-scratch optimum"
        );
        assert!(inc.span_sum > 0);
        assert!(inc.full_epoch_p50_ns > 0 && inc.incremental_epoch_p50_ns > 0);
        assert!(inc.speedup_p50 > 0.0);
        assert!(inc.full_resolves <= inc.epochs);
        assert!(
            inc.dirty_high_churn > inc.dirty_low_churn,
            "dirty-region work must grow with churn: {} @1% vs {} @5%",
            inc.dirty_low_churn,
            inc.dirty_high_churn
        );
        // Dirty work tracks churn, not n: even the 5% run touches a small
        // fraction of the stations*epochs vertex-epochs available.
        assert!(
            inc.dirty_high_churn < (inc.stations * inc.epochs) as u64 / 2,
            "dirty vertices ({}) should be far below n*epochs ({})",
            inc.dirty_high_churn,
            inc.stations * inc.epochs
        );
        let doc = Json::parse(&report.to_json().render_pretty()).unwrap();
        let sec = doc.get("incremental").expect("json carries the section");
        assert_eq!(
            sec.get("span_sum").and_then(Json::as_u64),
            Some(inc.span_sum)
        );
        assert_eq!(sec.get("spans_match"), Some(&Json::Bool(true)));
        let text = report.to_text();
        assert!(text.contains("incremental churn"));
        assert!(!text.contains("WARNING: incremental"));
    }

    #[test]
    fn baseline_diff_pins_incremental_span_sum() {
        let report = run_benchmarks(&small());
        let baseline = Json::parse(&report.to_json().render_pretty()).unwrap();
        let diff = diff_against_baseline(&report, &baseline).unwrap();
        assert!(diff.is_clean(), "{}", diff.render());
        // 5 algorithm rows + the incremental and palette sections.
        assert_eq!(diff.checked, 7);
        let tampered = report.to_json().render_pretty().replace(
            &format!(
                "\"span_sum\": {}",
                report.incremental.as_ref().unwrap().span_sum
            ),
            "\"span_sum\": 1",
        );
        let diff = diff_against_baseline(&report, &Json::parse(&tampered).unwrap()).unwrap();
        assert!(
            diff.drifts.iter().any(|d| d.contains("span_sum")),
            "{}",
            diff.render()
        );
        // Baselines without the section (pre-incremental) still diff clean.
        let stripped = {
            let Json::Object(fields) = report.to_json() else {
                unreachable!()
            };
            Json::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "incremental")
                    .collect(),
            )
        };
        let diff = diff_against_baseline(&report, &stripped).unwrap();
        assert!(diff.is_clean(), "{}", diff.render());
        assert_eq!(diff.checked, 6);
    }

    #[test]
    fn palette_section_pins_span_equality_and_work_reduction() {
        let report = run_benchmarks(&small());
        let pal = report.palette.as_ref().expect("palette section");
        assert!(pal.spans_match);
        assert_eq!(pal.rows.len(), 2);
        assert_eq!(pal.rows[0].palette, PaletteKind::List);
        assert_eq!(pal.rows[1].palette, PaletteKind::Bitset);
        assert_eq!(pal.rows[0].span, pal.rows[1].span);
        // Probe parity is exact; word-scan work must strictly favor the
        // bitset on this probe-dominated workload.
        assert_eq!(pal.rows[0].palette_probes, pal.rows[1].palette_probes);
        assert!(
            pal.rows[1].palette_word_scans < pal.rows[0].palette_word_scans,
            "bitset {} should beat list {}",
            pal.rows[1].palette_word_scans,
            pal.rows[0].palette_word_scans
        );
        assert!(pal.word_scan_ratio > 1.0);
        // The probe-phase slice is where the structural gap lives: a list
        // pop splices pointers, a bitset pop clears one bit. Pin the ≥2x
        // reduction the corridor workload delivers.
        assert!(
            pal.pop_word_scan_ratio >= 2.0,
            "pop-phase ratio {} (list {} vs bitset {})",
            pal.pop_word_scan_ratio,
            pal.rows[0].palette_pop_word_scans,
            pal.rows[1].palette_pop_word_scans
        );
        // One palette_pop sample per solve: reps * (cold + warm).
        assert_eq!(pal.rows[0].pop_hist.count(), 4);
        // The JSON section carries the rows; tampering with a span drifts.
        let doc = Json::parse(&report.to_json().render_pretty()).unwrap();
        let rows = doc
            .get("palette")
            .and_then(|p| p.get("rows"))
            .and_then(Json::as_array)
            .expect("palette rows");
        assert_eq!(rows.len(), 2);
        let mut doctored = report.clone();
        doctored.palette.as_mut().unwrap().rows[1].span += 1;
        let tampered = Json::parse(&doctored.to_json().render_pretty()).unwrap();
        let diff = diff_against_baseline(&report, &tampered).unwrap();
        assert!(
            diff.drifts.iter().any(|d| d.contains("palette/bitset")),
            "{}",
            diff.render()
        );
        let text = report.to_text();
        assert!(text.contains("palette backends"));
        assert!(!text.contains("WARNING: palette"));
    }

    #[test]
    fn text_rendering_mentions_every_algorithm() {
        let report = run_benchmarks(&small());
        let text = report.to_text();
        for a in &report.algorithms {
            assert!(text.contains(a.name));
        }
        assert!(!text.contains("best warm"), "no warm column at repeat=1");
    }

    #[test]
    fn repeat_reports_warm_path_separately() {
        let cfg = small().repeat(3);
        let report = run_benchmarks(&cfg);
        for a in &report.algorithms {
            assert_eq!(a.wall_ns.len(), 2, "{}: one cold solve per rep", a.id);
            assert_eq!(a.warm_wall_ns.len(), 4, "{}: repeat-1 warm per rep", a.id);
            let warm = a.warm_counters.as_ref().expect("warm snapshot");
            assert_eq!(a.counters.counter(Counter::WorkspaceReuses), 0, "{}", a.id);
            assert_eq!(warm.counter(Counter::WorkspaceReuses), 1, "{}", a.id);
            // Warm solves redo exactly the cold solve's work.
            for c in [
                Counter::PeelSteps,
                Counter::PaletteProbes,
                Counter::BfsNodeVisits,
            ] {
                assert_eq!(
                    warm.counter(c),
                    a.counters.counter(c),
                    "{} {}",
                    a.id,
                    c.name()
                );
            }
        }
        let text = report.to_text();
        assert!(text.contains("best warm"));
        assert!(text.contains("repeat=3"));
        // Cold-only counters and spans are unchanged by repeating.
        let base = run_benchmarks(&small());
        for (x, y) in report.algorithms.iter().zip(&base.algorithms) {
            assert_eq!(x.span, y.span, "{}", x.id);
            for c in Counter::ALL {
                assert_eq!(x.counters.counter(c), y.counters.counter(c), "{}", x.id);
            }
        }
    }
}
