//! The `ssg bench` harness: runs the paper's five algorithms (A1–A5) on
//! deterministic synthetic workloads with telemetry enabled and builds a
//! machine-readable run report.
//!
//! The report's JSON schema is `"ssg-bench/v1"` (see
//! [`BenchReport::to_json`] and EXPERIMENTS.md). Work counters are pure
//! functions of `(n, seed)`, so fixed-config runs reproduce them
//! bit-for-bit; wall times are environment-dependent and belong to the
//! committed `BENCH_labeling.json` baseline only as an order-of-magnitude
//! record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssg_graph::generators::random_bounded_degree_tree;
use ssg_intervals::gen::{corridor_unit_intervals, random_connected_intervals};
use ssg_labeling::solver::{default_registry, Problem};
use ssg_labeling::{SeparationVector, Workspace};
use ssg_telemetry::json::Json;
use ssg_telemetry::{Counter, Metrics, Phase, Snapshot};
use ssg_tree::RootedTree;

/// Configuration of one `ssg bench` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Vertex count per workload.
    pub n: usize,
    /// Timed repetitions per algorithm (counters are identical across
    /// repetitions; wall time is reported per repetition).
    pub reps: usize,
    /// RNG seed for the synthetic workloads.
    pub seed: u64,
    /// Solves per repetition on one shared [`Workspace`]: the first is the
    /// cold solve reported in `wall_ns`, the remaining `repeat - 1` reuse
    /// the warm arena and are reported in `warm_wall_ns`. `1` (the
    /// default) benches the cold path only.
    pub repeat: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 4000,
            reps: 3,
            seed: 42,
            repeat: 1,
        }
    }
}

/// Measured results of one algorithm on its workload.
#[derive(Debug, Clone)]
pub struct AlgorithmBench {
    /// Paper identifier (`"A1"` … `"A5"`).
    pub id: &'static str,
    /// Stable machine-readable algorithm name.
    pub name: &'static str,
    /// Human-readable workload description.
    pub workload: &'static str,
    /// Algorithm parameters, in render order (e.g. `("t", 2)`).
    pub params: Vec<(&'static str, u64)>,
    /// Vertex count of the workload actually run.
    pub n: usize,
    /// Largest color used by the produced labeling.
    pub span: u32,
    /// Wall time of each repetition's **cold** solve, in nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Wall time of every **warm** solve (`repeat - 1` per repetition, on
    /// the repetition's already-warm workspace). Empty when `repeat == 1`.
    pub warm_wall_ns: Vec<u64>,
    /// Telemetry totals of one cold solve (identical across repetitions).
    pub counters: Snapshot,
    /// Telemetry totals of one warm solve — the same work counters plus one
    /// `workspace_reuses`. `None` when `repeat == 1`.
    pub warm_counters: Option<Snapshot>,
}

impl AlgorithmBench {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".into(), Json::Str(self.id.into())),
            ("name".into(), Json::Str(self.name.into())),
            ("workload".into(), Json::Str(self.workload.into())),
            (
                "params".into(),
                Json::Object(
                    self.params
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::U64(v)))
                        .collect(),
                ),
            ),
            ("n".into(), Json::U64(self.n as u64)),
            ("span".into(), Json::U64(self.span as u64)),
            (
                "wall_ns".into(),
                Json::Array(self.wall_ns.iter().map(|&ns| Json::U64(ns)).collect()),
            ),
            (
                "wall_ns_min".into(),
                Json::U64(self.wall_ns.iter().copied().min().unwrap_or(0)),
            ),
        ];
        if let Some(warm) = &self.warm_counters {
            fields.push((
                "warm_wall_ns".into(),
                Json::Array(self.warm_wall_ns.iter().map(|&ns| Json::U64(ns)).collect()),
            ));
            fields.push((
                "warm_wall_ns_min".into(),
                Json::U64(self.warm_wall_ns.iter().copied().min().unwrap_or(0)),
            ));
            fields.push(("warm_counters".into(), warm.counters_json()));
        }
        fields.push(("counters".into(), self.counters.counters_json()));
        Json::Object(fields)
    }
}

/// A full `ssg bench` run: configuration plus one entry per algorithm.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration the run used.
    pub config: BenchConfig,
    /// Per-algorithm results, in paper order A1–A5.
    pub algorithms: Vec<AlgorithmBench>,
}

impl BenchReport {
    /// Renders the report as a `"ssg-bench/v1"` JSON value.
    ///
    /// Top-level keys, in order: `schema`, `config` (`n`, `reps`, `seed`,
    /// plus `repeat` when > 1), `algorithms` (array of objects with `id`,
    /// `name`, `workload`, `params`, `n`, `span`, `wall_ns`, `wall_ns_min`,
    /// `counters`, plus `warm_wall_ns` / `warm_wall_ns_min` /
    /// `warm_counters` when `repeat` > 1).
    pub fn to_json(&self) -> Json {
        let mut config = vec![
            ("n".into(), Json::U64(self.config.n as u64)),
            ("reps".into(), Json::U64(self.config.reps as u64)),
            ("seed".into(), Json::U64(self.config.seed)),
        ];
        if self.config.repeat > 1 {
            config.push(("repeat".into(), Json::U64(self.config.repeat as u64)));
        }
        Json::Object(vec![
            ("schema".into(), Json::Str("ssg-bench/v1".into())),
            ("config".into(), Json::Object(config)),
            (
                "algorithms".into(),
                Json::Array(self.algorithms.iter().map(|a| a.to_json()).collect()),
            ),
        ])
    }

    /// Renders a human-readable table (the non-`--json` CLI output). With
    /// `repeat > 1` a `best warm` column compares the warm-workspace path
    /// against the cold solve.
    pub fn to_text(&self) -> String {
        let warm = self.config.repeat > 1;
        let mut out = format!(
            "ssg bench: n={} reps={} seed={}",
            self.config.n, self.config.reps, self.config.seed
        );
        if warm {
            out.push_str(&format!(" repeat={}", self.config.repeat));
        }
        out.push('\n');
        out.push_str(
            "id  algorithm                      span  best wall     peel_steps  palette_probes",
        );
        if warm {
            out.push_str("  best warm");
        }
        out.push('\n');
        for a in &self.algorithms {
            let best = a.wall_ns.iter().copied().min().unwrap_or(0);
            out.push_str(&format!(
                "{:<3} {:<30} {:>5} {:>9.3} ms {:>12} {:>15}",
                a.id,
                a.name,
                a.span,
                best as f64 / 1e6,
                a.counters.counter(Counter::PeelSteps),
                a.counters.counter(Counter::PaletteProbes),
            ));
            if warm {
                let best_warm = a.warm_wall_ns.iter().copied().min().unwrap_or(0);
                out.push_str(&format!(" {:>8.3} ms", best_warm as f64 / 1e6));
            }
            out.push('\n');
        }
        out
    }
}

/// One timed solve through the registry on `ws`, on a fresh enabled
/// [`Metrics`] handle under [`Phase::Run`]. Returns `(span, snapshot)`;
/// the output buffer is recycled into `ws`.
fn timed_solve(name: &str, problem: &Problem<'_>, ws: &mut Workspace) -> (u32, Snapshot) {
    let metrics = Metrics::enabled();
    let span;
    {
        let _run = metrics.time(Phase::Run);
        let lab = default_registry().solve(name, problem, ws, &metrics);
        span = lab.span();
        ws.recycle(lab);
    }
    (span, metrics.snapshot())
}

/// Runs one algorithm `cfg.reps` times. Each repetition starts from a cold
/// [`Workspace`] (that solve lands in `wall_ns`) and then reuses it for
/// `cfg.repeat - 1` warm solves (landing in `warm_wall_ns`).
fn bench_one(
    cfg: &BenchConfig,
    id: &'static str,
    name: &'static str,
    workload: &'static str,
    params: Vec<(&'static str, u64)>,
    n: usize,
    problem: &Problem<'_>,
) -> AlgorithmBench {
    let mut wall_ns = Vec::with_capacity(cfg.reps);
    let mut warm_wall_ns = Vec::new();
    let mut span = 0u32;
    let mut counters = Snapshot::default();
    let mut warm_counters = None;
    for _ in 0..cfg.reps.max(1) {
        let mut ws = Workspace::new();
        let (cold_span, cold_snap) = timed_solve(name, problem, &mut ws);
        span = cold_span;
        wall_ns.push(cold_snap.phase_ns(Phase::Run));
        counters = cold_snap;
        for _ in 1..cfg.repeat.max(1) {
            let (warm_span, warm_snap) = timed_solve(name, problem, &mut ws);
            debug_assert_eq!(warm_span, span, "warm solves must be bit-identical");
            warm_wall_ns.push(warm_snap.phase_ns(Phase::Run));
            warm_counters = Some(warm_snap);
        }
    }
    AlgorithmBench {
        id,
        name,
        workload,
        params,
        n,
        span,
        wall_ns,
        warm_wall_ns,
        counters,
        warm_counters,
    }
}

/// Runs all five paper algorithms on deterministic workloads derived from
/// `cfg` and returns the aggregated report.
///
/// Workloads: A1/A2 share a random connected interval graph, A3 uses a
/// tight unit-interval corridor (the hardest case for Theorem 3), A4/A5
/// share a random degree-bounded tree. Every solve is dispatched through
/// [`default_registry`] by the algorithm's `name` — report rows are
/// replayable as `registry.solve(name, problem, ws, metrics)`.
pub fn run_benchmarks(cfg: &BenchConfig) -> BenchReport {
    let n = cfg.n.max(2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let interval_rep = random_connected_intervals(n, 0.5, 1.0, 3.0, &mut rng);
    let unit_rep = corridor_unit_intervals(n, 4, &mut rng);
    let tree_graph = random_bounded_degree_tree(n, 4, &mut rng);
    let tree = RootedTree::bfs_canonical(&tree_graph, 0).expect("generator returns a tree");

    let ones_t2 = SeparationVector::all_ones(2);
    let d1_then_one = SeparationVector::delta1_then_ones(4, 2).expect("valid (4,1)");
    let d1_d2 = SeparationVector::two(5, 2).expect("valid (5,2)");

    let algorithms = vec![
        bench_one(
            cfg,
            "A1",
            "interval_l1",
            "random connected interval graph",
            vec![("t", 2)],
            n,
            &Problem::interval(&interval_rep, &ones_t2),
        ),
        bench_one(
            cfg,
            "A2",
            "interval_approx_delta1",
            "random connected interval graph",
            vec![("t", 2), ("delta1", 4)],
            n,
            &Problem::interval(&interval_rep, &d1_then_one),
        ),
        bench_one(
            cfg,
            "A3",
            "unit_interval_l_delta1_delta2",
            "tight unit-interval corridor (k=4)",
            vec![("delta1", 5), ("delta2", 2)],
            n,
            &Problem::unit_interval(&unit_rep, &d1_d2),
        ),
        bench_one(
            cfg,
            "A4",
            "tree_l1",
            "random degree-<=4 tree",
            vec![("t", 2)],
            n,
            &Problem::tree(&tree, &ones_t2),
        ),
        bench_one(
            cfg,
            "A5",
            "tree_approx_delta1",
            "random degree-<=4 tree",
            vec![("t", 2), ("delta1", 4)],
            n,
            &Problem::tree(&tree, &d1_then_one),
        ),
    ];
    BenchReport {
        config: *cfg,
        algorithms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BenchConfig {
        BenchConfig {
            n: 120,
            reps: 2,
            seed: 7,
            repeat: 1,
        }
    }

    #[test]
    fn report_covers_all_five_algorithms() {
        let report = run_benchmarks(&small());
        let ids: Vec<&str> = report.algorithms.iter().map(|a| a.id).collect();
        assert_eq!(ids, ["A1", "A2", "A3", "A4", "A5"]);
        for a in &report.algorithms {
            assert_eq!(a.wall_ns.len(), 2, "{}", a.id);
            assert!(
                a.counters.counter(Counter::PeelSteps) >= a.n as u64,
                "{} must record at least one peel step per vertex",
                a.id
            );
            assert!(
                a.counters.counter(Counter::PaletteProbes) > 0,
                "{} must record palette probes",
                a.id
            );
        }
    }

    #[test]
    fn counters_are_reproducible_across_runs() {
        let a = run_benchmarks(&small());
        let b = run_benchmarks(&small());
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            assert_eq!(x.span, y.span, "{}", x.id);
            for c in Counter::ALL {
                assert_eq!(
                    x.counters.counter(c),
                    y.counters.counter(c),
                    "{} {}",
                    x.id,
                    c.name()
                );
            }
        }
    }

    #[test]
    fn text_rendering_mentions_every_algorithm() {
        let report = run_benchmarks(&small());
        let text = report.to_text();
        for a in &report.algorithms {
            assert!(text.contains(a.name));
        }
        assert!(!text.contains("best warm"), "no warm column at repeat=1");
    }

    #[test]
    fn repeat_reports_warm_path_separately() {
        let cfg = BenchConfig {
            repeat: 3,
            ..small()
        };
        let report = run_benchmarks(&cfg);
        for a in &report.algorithms {
            assert_eq!(a.wall_ns.len(), 2, "{}: one cold solve per rep", a.id);
            assert_eq!(a.warm_wall_ns.len(), 4, "{}: repeat-1 warm per rep", a.id);
            let warm = a.warm_counters.as_ref().expect("warm snapshot");
            assert_eq!(a.counters.counter(Counter::WorkspaceReuses), 0, "{}", a.id);
            assert_eq!(warm.counter(Counter::WorkspaceReuses), 1, "{}", a.id);
            // Warm solves redo exactly the cold solve's work.
            for c in [Counter::PeelSteps, Counter::PaletteProbes, Counter::BfsNodeVisits] {
                assert_eq!(
                    warm.counter(c),
                    a.counters.counter(c),
                    "{} {}",
                    a.id,
                    c.name()
                );
            }
        }
        let text = report.to_text();
        assert!(text.contains("best warm"));
        assert!(text.contains("repeat=3"));
        // Cold-only counters and spans are unchanged by repeating.
        let base = run_benchmarks(&small());
        for (x, y) in report.algorithms.iter().zip(&base.algorithms) {
            assert_eq!(x.span, y.span, "{}", x.id);
            for c in Counter::ALL {
                assert_eq!(x.counters.counter(c), y.counters.counter(c), "{}", x.id);
            }
        }
    }
}
