//! The `ssg bench` harness: runs the paper's five algorithms (A1–A5) on
//! deterministic synthetic workloads with telemetry enabled and builds a
//! machine-readable run report.
//!
//! The report's JSON schema is `"ssg-bench/v1"` (see
//! [`BenchReport::to_json`] and EXPERIMENTS.md). Work counters are pure
//! functions of `(n, seed)`, so fixed-config runs reproduce them
//! bit-for-bit; wall times are environment-dependent and belong to the
//! committed `BENCH_labeling.json` baseline only as an order-of-magnitude
//! record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssg_graph::generators::random_bounded_degree_tree;
use ssg_intervals::gen::{corridor_unit_intervals, random_connected_intervals};
use ssg_labeling::interval::{approx_delta1_coloring_with, l1_coloring_with};
use ssg_labeling::tree::{
    approx_delta1_coloring_with as tree_approx_with, l1_coloring_with as tree_l1_with,
};
use ssg_labeling::unit_interval::l_delta1_delta2_coloring_with;
use ssg_telemetry::json::Json;
use ssg_telemetry::{Counter, Metrics, Phase, Snapshot};
use ssg_tree::RootedTree;

/// Configuration of one `ssg bench` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Vertex count per workload.
    pub n: usize,
    /// Timed repetitions per algorithm (counters are identical across
    /// repetitions; wall time is reported per repetition).
    pub reps: usize,
    /// RNG seed for the synthetic workloads.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 4000,
            reps: 3,
            seed: 42,
        }
    }
}

/// Measured results of one algorithm on its workload.
#[derive(Debug, Clone)]
pub struct AlgorithmBench {
    /// Paper identifier (`"A1"` … `"A5"`).
    pub id: &'static str,
    /// Stable machine-readable algorithm name.
    pub name: &'static str,
    /// Human-readable workload description.
    pub workload: &'static str,
    /// Algorithm parameters, in render order (e.g. `("t", 2)`).
    pub params: Vec<(&'static str, u64)>,
    /// Vertex count of the workload actually run.
    pub n: usize,
    /// Largest color used by the produced labeling.
    pub span: u32,
    /// Wall time of each repetition, in nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Telemetry totals of one repetition (identical across repetitions).
    pub counters: Snapshot,
}

impl AlgorithmBench {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("id".into(), Json::Str(self.id.into())),
            ("name".into(), Json::Str(self.name.into())),
            ("workload".into(), Json::Str(self.workload.into())),
            (
                "params".into(),
                Json::Object(
                    self.params
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::U64(v)))
                        .collect(),
                ),
            ),
            ("n".into(), Json::U64(self.n as u64)),
            ("span".into(), Json::U64(self.span as u64)),
            (
                "wall_ns".into(),
                Json::Array(self.wall_ns.iter().map(|&ns| Json::U64(ns)).collect()),
            ),
            (
                "wall_ns_min".into(),
                Json::U64(self.wall_ns.iter().copied().min().unwrap_or(0)),
            ),
            ("counters".into(), self.counters.counters_json()),
        ])
    }
}

/// A full `ssg bench` run: configuration plus one entry per algorithm.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration the run used.
    pub config: BenchConfig,
    /// Per-algorithm results, in paper order A1–A5.
    pub algorithms: Vec<AlgorithmBench>,
}

impl BenchReport {
    /// Renders the report as a `"ssg-bench/v1"` JSON value.
    ///
    /// Top-level keys, in order: `schema`, `config` (`n`, `reps`, `seed`),
    /// `algorithms` (array of objects with `id`, `name`, `workload`,
    /// `params`, `n`, `span`, `wall_ns`, `wall_ns_min`, `counters`).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema".into(), Json::Str("ssg-bench/v1".into())),
            (
                "config".into(),
                Json::Object(vec![
                    ("n".into(), Json::U64(self.config.n as u64)),
                    ("reps".into(), Json::U64(self.config.reps as u64)),
                    ("seed".into(), Json::U64(self.config.seed)),
                ]),
            ),
            (
                "algorithms".into(),
                Json::Array(self.algorithms.iter().map(|a| a.to_json()).collect()),
            ),
        ])
    }

    /// Renders a human-readable table (the non-`--json` CLI output).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "ssg bench: n={} reps={} seed={}\n",
            self.config.n, self.config.reps, self.config.seed
        );
        out.push_str(
            "id  algorithm                      span  best wall     peel_steps  palette_probes\n",
        );
        for a in &self.algorithms {
            let best = a.wall_ns.iter().copied().min().unwrap_or(0);
            out.push_str(&format!(
                "{:<3} {:<30} {:>5} {:>9.3} ms {:>12} {:>15}\n",
                a.id,
                a.name,
                a.span,
                best as f64 / 1e6,
                a.counters.counter(Counter::PeelSteps),
                a.counters.counter(Counter::PaletteProbes),
            ));
        }
        out
    }
}

/// Runs one algorithm `cfg.reps` times, each repetition on a fresh enabled
/// [`Metrics`] handle timed under [`Phase::Run`].
fn bench_one<F>(
    cfg: &BenchConfig,
    id: &'static str,
    name: &'static str,
    workload: &'static str,
    params: Vec<(&'static str, u64)>,
    n: usize,
    mut run: F,
) -> AlgorithmBench
where
    F: FnMut(&Metrics) -> u32,
{
    let mut wall_ns = Vec::with_capacity(cfg.reps);
    let mut span = 0u32;
    let mut counters = Snapshot::default();
    for _ in 0..cfg.reps.max(1) {
        let metrics = Metrics::enabled();
        {
            let _run = metrics.time(Phase::Run);
            span = run(&metrics);
        }
        let snap = metrics.snapshot();
        wall_ns.push(snap.phase_ns(Phase::Run));
        counters = snap;
    }
    AlgorithmBench {
        id,
        name,
        workload,
        params,
        n,
        span,
        wall_ns,
        counters,
    }
}

/// Runs all five paper algorithms on deterministic workloads derived from
/// `cfg` and returns the aggregated report.
///
/// Workloads: A1/A2 share a random connected interval graph, A3 uses a
/// tight unit-interval corridor (the hardest case for Theorem 3), A4/A5
/// share a random degree-bounded tree.
pub fn run_benchmarks(cfg: &BenchConfig) -> BenchReport {
    let n = cfg.n.max(2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let interval_rep = random_connected_intervals(n, 0.5, 1.0, 3.0, &mut rng);
    let unit_rep = corridor_unit_intervals(n, 4, &mut rng);
    let tree_graph = random_bounded_degree_tree(n, 4, &mut rng);
    let tree = RootedTree::bfs_canonical(&tree_graph, 0).expect("generator returns a tree");

    let algorithms = vec![
        bench_one(
            cfg,
            "A1",
            "interval_l1",
            "random connected interval graph",
            vec![("t", 2)],
            n,
            |m| l1_coloring_with(&interval_rep, 2, m).labeling.span(),
        ),
        bench_one(
            cfg,
            "A2",
            "interval_approx_delta1",
            "random connected interval graph",
            vec![("t", 2), ("delta1", 4)],
            n,
            |m| {
                approx_delta1_coloring_with(&interval_rep, 2, 4, m)
                    .labeling
                    .span()
            },
        ),
        bench_one(
            cfg,
            "A3",
            "unit_interval_l_delta1_delta2",
            "tight unit-interval corridor (k=4)",
            vec![("delta1", 5), ("delta2", 2)],
            n,
            |m| {
                l_delta1_delta2_coloring_with(&unit_rep, 5, 2, m)
                    .labeling
                    .span()
            },
        ),
        bench_one(
            cfg,
            "A4",
            "tree_l1",
            "random degree-<=4 tree",
            vec![("t", 2)],
            n,
            |m| tree_l1_with(&tree, 2, m).labeling.span(),
        ),
        bench_one(
            cfg,
            "A5",
            "tree_approx_delta1",
            "random degree-<=4 tree",
            vec![("t", 2), ("delta1", 4)],
            n,
            |m| tree_approx_with(&tree, 2, 4, m).labeling.span(),
        ),
    ];
    BenchReport {
        config: *cfg,
        algorithms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BenchConfig {
        BenchConfig {
            n: 120,
            reps: 2,
            seed: 7,
        }
    }

    #[test]
    fn report_covers_all_five_algorithms() {
        let report = run_benchmarks(&small());
        let ids: Vec<&str> = report.algorithms.iter().map(|a| a.id).collect();
        assert_eq!(ids, ["A1", "A2", "A3", "A4", "A5"]);
        for a in &report.algorithms {
            assert_eq!(a.wall_ns.len(), 2, "{}", a.id);
            assert!(
                a.counters.counter(Counter::PeelSteps) >= a.n as u64,
                "{} must record at least one peel step per vertex",
                a.id
            );
            assert!(
                a.counters.counter(Counter::PaletteProbes) > 0,
                "{} must record palette probes",
                a.id
            );
        }
    }

    #[test]
    fn counters_are_reproducible_across_runs() {
        let a = run_benchmarks(&small());
        let b = run_benchmarks(&small());
        for (x, y) in a.algorithms.iter().zip(&b.algorithms) {
            assert_eq!(x.span, y.span, "{}", x.id);
            for c in Counter::ALL {
                assert_eq!(
                    x.counters.counter(c),
                    y.counters.counter(c),
                    "{} {}",
                    x.id,
                    c.name()
                );
            }
        }
    }

    #[test]
    fn text_rendering_mentions_every_algorithm() {
        let report = run_benchmarks(&small());
        let text = report.to_text();
        for a in &report.algorithms {
            assert!(text.contains(a.name));
        }
    }
}
