//! `ssg` — command-line channel assignment.
//!
//! ```text
//! ssg gen corridor <n> [seed]        # emit an interval-graph edge list
//! ssg gen platoon  <n> <k> [seed]    # tight unit-interval platoon
//! ssg gen backbone <n> [seed]        # random degree-4 tree
//! ssg classify <file>                # certify the graph class
//! ssg color <file> <d1[,d2,...]>     # auto-dispatch an L(δ...) coloring
//! ssg churn [epochs] [seed]          # dynamic corridor churn demo
//! ssg bench [--json] [--n N] [--reps R] [--seed S] [--repeat K]
//!                                    # run A1-A5 with telemetry; --json
//!                                    # emits an ssg-bench/v1 report;
//!                                    # --repeat K>1 adds warm-workspace
//!                                    # timings next to the cold solves
//! ```
//!
//! Graph files: first line `n m`, then `m` lines `u v` (0-based).
//!
//! Every coloring command dispatches through the [`SolverRegistry`] with
//! one [`Workspace`] held for the whole invocation.
//!
//! [`SolverRegistry`]: strongly_simplicial::labeling::SolverRegistry

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use strongly_simplicial::bench::{run_benchmarks, BenchConfig};
use strongly_simplicial::labeling::auto::Guarantee;
use strongly_simplicial::labeling::solver::default_registry;
use strongly_simplicial::labeling::{all_violations, SeparationVector, Workspace};
use strongly_simplicial::telemetry::Metrics;
use strongly_simplicial::netsim::{
    simulate_corridor, BackboneNetwork, CorridorNetwork, DynamicsConfig, Policy, VehicularNetwork,
};
use strongly_simplicial::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("color") => cmd_color(&args[1..]),
        Some("churn") => cmd_churn(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!("usage: ssg gen|classify|color|churn|bench ... (see --help in the README)");
            2
        }
    };
    std::process::exit(code);
}

fn cmd_gen(args: &[String]) -> i32 {
    let kind = match args.first() {
        Some(k) => k.as_str(),
        None => {
            eprintln!("usage: ssg gen corridor|platoon|backbone <n> [...] [seed]");
            return 2;
        }
    };
    let n: usize = match args.get(1).and_then(|a| a.parse().ok()) {
        Some(n) if n >= 1 => n,
        _ => {
            eprintln!("gen: need a positive vertex count");
            return 2;
        }
    };
    let g = match kind {
        "corridor" => {
            let seed = parse_seed(args.get(2));
            let mut rng = StdRng::seed_from_u64(seed);
            CorridorNetwork::generate(n, 1.0, 1.0, 5.0, &mut rng)
                .graph()
                .clone()
        }
        "platoon" => {
            let k: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4);
            let seed = parse_seed(args.get(3));
            let mut rng = StdRng::seed_from_u64(seed);
            VehicularNetwork::platoon(n, k, &mut rng).graph().clone()
        }
        "backbone" => {
            let seed = parse_seed(args.get(2));
            let mut rng = StdRng::seed_from_u64(seed);
            BackboneNetwork::generate(n, 4, &mut rng).graph().clone()
        }
        other => {
            eprintln!("gen: unknown workload '{other}'");
            return 2;
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if writeln!(out, "{} {}", g.num_vertices(), g.num_edges()).is_err() {
        return 0; // closed pipe
    }
    for (u, v) in g.edges() {
        if writeln!(out, "{u} {v}").is_err() {
            return 0;
        }
    }
    0
}

fn parse_seed(arg: Option<&String>) -> u64 {
    arg.and_then(|a| a.parse().ok()).unwrap_or(42)
}

fn read_graph(path: &str) -> Result<Graph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mut lines = BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or("empty file")?
        .map_err(|e| e.to_string())?;
    let mut it = header.split_whitespace();
    let n: usize = it.next().ok_or("missing n")?.parse().map_err(|_| "bad n")?;
    let m: usize = it.next().ok_or("missing m")?.parse().map_err(|_| "bad m")?;
    let mut edges = Vec::with_capacity(m);
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = it.next().ok_or("missing u")?.parse().map_err(|_| "bad u")?;
        let v: u32 = it.next().ok_or("missing v")?.parse().map_err(|_| "bad v")?;
        edges.push((u, v));
    }
    if edges.len() != m {
        return Err(format!("expected {m} edges, found {}", edges.len()));
    }
    Graph::from_edges(n, &edges).map_err(|e| e.to_string())
}

fn cmd_classify(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("usage: ssg classify <file>");
        return 2;
    };
    match read_graph(path) {
        Ok(g) => {
            println!(
                "n={} m={} class={:?}",
                g.num_vertices(),
                g.num_edges(),
                default_registry().classify(&g)
            );
            0
        }
        Err(e) => {
            eprintln!("classify: {e}");
            1
        }
    }
}

fn cmd_color(args: &[String]) -> i32 {
    let (Some(path), Some(sep_spec)) = (args.first(), args.get(1)) else {
        eprintln!("usage: ssg color <file> <d1[,d2,...]>");
        return 2;
    };
    let deltas: Result<Vec<u32>, _> = sep_spec.split(',').map(str::parse).collect();
    let sep = match deltas
        .map_err(|_| "bad separations".to_string())
        .and_then(|d| SeparationVector::new(d).map_err(|e| e.to_string()))
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("color: {e}");
            return 2;
        }
    };
    let g = match read_graph(path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("color: {e}");
            return 1;
        }
    };
    let mut ws = Workspace::new();
    let out = default_registry().auto_coloring(&g, &sep, &mut ws, &Metrics::disabled());
    let violations = all_violations(&g, &sep, out.labeling.colors());
    println!(
        "class={:?} algorithm=\"{}\" guarantee={} span={} channels={} violations={}",
        out.class,
        out.algorithm,
        match out.guarantee {
            Guarantee::Optimal => "optimal".to_string(),
            Guarantee::Approximation(f) => format!("{f}-approx"),
            Guarantee::Heuristic => "heuristic".to_string(),
        },
        out.labeling.span(),
        out.labeling.distinct_colors(),
        violations.len()
    );
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    for (v, c) in out.labeling.colors().iter().enumerate() {
        // A closed pipe (e.g. `| head`) is a normal way to stop reading.
        if writeln!(w, "{v} {c}").is_err() {
            break;
        }
    }
    if violations.is_empty() {
        0
    } else {
        1
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let mut cfg = BenchConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--n" => match it.next().and_then(|a| a.parse().ok()) {
                Some(n) if n >= 2 => cfg.n = n,
                _ => {
                    eprintln!("bench: --n needs an integer >= 2");
                    return 2;
                }
            },
            "--reps" => match it.next().and_then(|a| a.parse().ok()) {
                Some(r) if r >= 1 => cfg.reps = r,
                _ => {
                    eprintln!("bench: --reps needs an integer >= 1");
                    return 2;
                }
            },
            "--seed" => match it.next().and_then(|a| a.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => {
                    eprintln!("bench: --seed needs an integer");
                    return 2;
                }
            },
            "--repeat" => match it.next().and_then(|a| a.parse().ok()) {
                Some(k) if k >= 1 => cfg.repeat = k,
                _ => {
                    eprintln!("bench: --repeat needs an integer >= 1");
                    return 2;
                }
            },
            other => {
                eprintln!("bench: unknown flag '{other}' (usage: ssg bench [--json] [--n N] [--reps R] [--seed S] [--repeat K])");
                return 2;
            }
        }
    }
    let report = run_benchmarks(&cfg);
    if json {
        print!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.to_text());
    }
    0
}

fn cmd_churn(args: &[String]) -> i32 {
    let epochs: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50);
    let seed = parse_seed(args.get(1));
    let cfg = DynamicsConfig {
        initial: 100,
        epochs,
        p_depart: 0.08,
        arrivals_max: 10,
        corridor_len: 60.0,
        range_min: 1.0,
        range_max: 4.0,
        t: 2,
    };
    for policy in [Policy::OptimalL1, Policy::Greedy] {
        let mut rng = StdRng::seed_from_u64(seed);
        let rep = simulate_corridor(cfg, policy, &mut rng);
        println!(
            "{policy:?}: epochs={} mean_stations={:.1} mean_span={:.2} max_span={} mean_churn={:.1}% retunes={}",
            rep.epochs,
            rep.mean_stations,
            rep.mean_span,
            rep.max_span,
            rep.mean_churn * 100.0,
            rep.total_retunes
        );
    }
    0
}
