//! `ssg` — command-line channel assignment.
//!
//! ```text
//! ssg gen corridor <n> [seed]        # emit an interval-graph edge list
//! ssg gen platoon  <n> <k> [seed]    # tight unit-interval platoon
//! ssg gen backbone <n> [seed]        # random degree-4 tree
//! ssg classify <file>                # certify the graph class
//! ssg color <file> <d1[,d2,...]> [--palette list|bitset]
//!           [--format text|json] [--trace]
//!                                    # auto-dispatch an L(δ...) coloring;
//!                                    # --palette picks the workspace's
//!                                    # palette backend (default bitset);
//!                                    # --trace prints the span log to
//!                                    # stderr
//! ssg batch <file.reqs> [--workers N] [--queue-cap N] [--fail-fast]
//!           [--palette list|bitset] [--format text|json] [--trace]
//!           [--trace-dump <path>] [--trace-export <path>]
//!                                    # run a request file through the
//!                                    # sharded batch engine; batch always
//!                                    # records a flight recorder: --trace
//!                                    # prints its span log, --trace-dump
//!                                    # writes its JSON to <path>,
//!                                    # --trace-export writes a Chrome/
//!                                    # Perfetto trace-event JSON, and any
//!                                    # deadline miss or worker panic
//!                                    # auto-dumps to <file.reqs>.trace.json
//! ssg churn [epochs] [seed] [--incremental] [--format text|json]
//!                                    # dynamic corridor churn demo with
//!                                    # per-epoch solve-time percentiles;
//!                                    # --incremental races delta patching
//!                                    # against the from-scratch optimum
//!                                    # and exits 1 if any epoch's span
//!                                    # diverges; --format json emits an
//!                                    # ssg-churn/v1 report
//! ssg metrics [--n N] [--seed S]     # run a standard workload and print
//!                                    # Prometheus text exposition
//! ssg bench [--format text|json] [--n N] [--reps R] [--seed S]
//!           [--repeat K] [--palette list|bitset]
//!           [--compare BASELINE.json]
//!                                    # run A1-A5 with telemetry; the
//!                                    # palette section always measures
//!                                    # list vs bitset head to head,
//!                                    # --palette picks the backend for
//!                                    # everything else;
//!                                    # --format json emits an
//!                                    # ssg-bench/v2 report (latency
//!                                    # histograms included); --repeat K>1 adds
//!                                    # warm-workspace timings next to
//!                                    # the cold solves; --compare diffs
//!                                    # spans against a committed v1 or
//!                                    # v2 report and exits 1 on any
//!                                    # drift
//! ssg lab run <spec.lab> --dir DIR [--baseline TABLE.json]
//!            [--palette list|bitset] [--format text|json]
//!                                    # expand the spec's scenario matrix
//!                                    # and run every cell not already in
//!                                    # DIR's row log; one flushed
//!                                    # ssg-lab/v1 row per cell makes the
//!                                    # run resumable; --baseline applies
//!                                    # the span-drift gate (exit 1 on
//!                                    # drift, flight-recorder dump next
//!                                    # to each offending row); --format
//!                                    # json prints the deterministic
//!                                    # table (the committed baseline
//!                                    # artifact)
//! ssg lab resume <dir> [--baseline TABLE.json] [--palette list|bitset]
//!            [--format text|json]
//!                                    # continue an interrupted run from
//!                                    # the spec pinned in <dir>; --palette
//!                                    # re-runs cells without a spec-pinned
//!                                    # palette on the named backend
//! ssg lab report <dir> [--format text|json]
//!                                    # rebuild the table from <dir>'s
//!                                    # rows without executing anything
//! ssg serve [--addr A] [--workers N] [--queue-cap N]
//!           [--backpressure block|failfast] [--deadline-ms N]
//!           [--max-conns N] [--duration SECS] [--trace-dump PATH]
//!                                    # TCP front door: ssg-proto/1 line
//!                                    # protocol + HTTP (/healthz,
//!                                    # /metrics, POST /label) on one
//!                                    # port; see PROTOCOL.md. Stops on
//!                                    # a loopback SHUTDOWN verb or when
//!                                    # --duration elapses; any incident
//!                                    # auto-dumps the flight recorder
//! ssg loadgen [--addr A] [--rps R] [--duration SECS] [--conns C]
//!             [--workload corridor|platoon|backbone] [--n N] [--seed S]
//!             [--sep d1[,d2,...]] [--solver NAME] [--deadline-ms N]
//!             [--timeout-ms N] [--drain] [--format text|json]
//!             [--trace-export <path>] [--trace-dump <path>]
//!                                    # open-loop load against a serve:
//!                                    # fixed-schedule arrivals (no
//!                                    # coordinated omission); reports
//!                                    # achieved RPS + latency tail;
//!                                    # --format json emits ssg-load/v1;
//!                                    # --drain sends SHUTDOWN after;
//!                                    # --trace-export propagates a trace
//!                                    # context on every request and
//!                                    # writes the client-side span dump
//!                                    # as Chrome trace-event JSON
//! ssg fetch <addr> <path> [--post BODY] [--trace-id HEX]
//!           [--trace-dump <path>] [--trace-export <path>]
//!                                    # one HTTP request against a serve,
//!                                    # body to stdout (exit 1 on
//!                                    # non-200) — curl for scripts;
//!                                    # --post sends BODY to <path>;
//!                                    # --trace-id propagates the given
//!                                    # trace id via X-Ssg-Trace and
//!                                    # records a client.request span,
//!                                    # dumped raw (--trace-dump) or as
//!                                    # trace-event JSON (--trace-export)
//! ssg trace export <dump.json> [--merge <dump2.json>] [-o <path>]
//!                                    # convert an ssg-trace/v1 dump to
//!                                    # Chrome/Perfetto trace-event JSON;
//!                                    # --merge aligns a second (server)
//!                                    # dump onto the first (client) dump's
//!                                    # timebase, one process lane each
//! ssg trace check <trace.json> [--expect-trace HEX]
//!                                    # validate a trace-event JSON file:
//!                                    # matched B/E pairs per lane; with
//!                                    # --expect-trace, the given trace id
//!                                    # must appear on some span
//! ssg profile <dump.json> [--format text|json]
//!                                    # fold an ssg-trace/v1 dump into a
//!                                    # self-time call tree (total/self
//!                                    # time, count, p50/p99 per node);
//!                                    # --format json emits ssg-profile/v1
//! ```
//!
//! Graph files: first line `n m`, then `m` lines `u v` (0-based).
//!
//! Request files (`ssg batch`): one request per line,
//! `<workload> <n> <seed> <d1[,d2,...]> [solver=NAME] [deadline_ms=N]`
//! with workload one of `corridor`, `platoon`, `backbone`, or
//! `file:<path>` (for which `n` and `seed` are ignored). Blank lines and
//! `#` comments are skipped.
//!
//! Every fallible command returns [`SsgError`]; [`exit_code`] maps each
//! variant to a process exit code in exactly one place:
//!
//! | code | meaning                                          |
//! |------|--------------------------------------------------|
//! | 0    | success                                          |
//! | 1    | I/O failure, or a coloring with violations       |
//! | 2    | usage / parse / specification error              |
//! | 3    | class mismatch or unknown solver                 |
//! | 4    | deadline exceeded                                |
//! | 5    | worker panic                                     |
//! | 6    | queue full / engine shutting down                |
//!
//! Sequential coloring commands dispatch through the [`SolverRegistry`]
//! with one [`Workspace`] held for the whole invocation; `ssg batch` goes
//! through the sharded [`Engine`] instead.
//!
//! [`SolverRegistry`]: strongly_simplicial::labeling::SolverRegistry

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;
use strongly_simplicial::bench::{diff_against_baseline, run_benchmarks, BenchConfig};
use strongly_simplicial::engine::{Backpressure, Engine, LabelRequest, LabelResponse};
use strongly_simplicial::lab::{
    load_dir_spec, render_drifts, render_table_text, report_dir, run_lab_with_palette, LabSpec,
    LabSummary,
};
use strongly_simplicial::labeling::auto::Guarantee;
use strongly_simplicial::labeling::solver::{default_registry, Problem};
use strongly_simplicial::labeling::{all_violations, PaletteKind, SeparationVector, Workspace};
use strongly_simplicial::netsim::{
    simulate_corridor, simulate_corridor_incremental, BackboneNetwork, ChurnReport,
    CorridorNetwork, DynamicsConfig, Policy, VehicularNetwork,
};
use strongly_simplicial::prelude::*;
use strongly_simplicial::telemetry::json::Json;
use strongly_simplicial::telemetry::report::ReportEnvelope;
use strongly_simplicial::telemetry::{export, FlightRecorder, Metrics, Profile, TraceDump};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ssg: {e}");
            exit_code(&e)
        }
    };
    std::process::exit(code);
}

/// Dispatches to the subcommand. `Ok` carries the exit code for
/// non-error outcomes that still signal something (a coloring with
/// violations exits 1); every failure funnels through [`exit_code`].
fn run(args: &[String]) -> Result<i32, SsgError> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("color") => cmd_color(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("churn") => cmd_churn(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("lab") => cmd_lab(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("fetch") => cmd_fetch(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        _ => Err(SsgError::Usage(
            "ssg gen|classify|color|batch|churn|metrics|bench|lab|serve|loadgen|fetch|trace|profile ... (see the README)"
                .into(),
        )),
    }
}

/// The one place an [`SsgError`] becomes a process exit code.
fn exit_code(err: &SsgError) -> i32 {
    match err {
        SsgError::Io { .. } => 1,
        SsgError::Usage(_) | SsgError::Parse { .. } | SsgError::Spec(_) => 2,
        SsgError::ClassMismatch { .. } | SsgError::UnknownSolver { .. } => 3,
        SsgError::DeadlineExceeded { .. } => 4,
        SsgError::WorkerPanic(_) => 5,
        SsgError::QueueFull | SsgError::ShuttingDown => 6,
        // `SsgError` is #[non_exhaustive]; treat future variants as generic
        // failures rather than silently reusing a specific code.
        _ => 1,
    }
}

// ---------------------------------------------------------------------------
// Shared flag parsing
// ---------------------------------------------------------------------------

/// Output format shared by every subcommand that renders a report:
/// `color`, `batch`, `churn`, `bench`, `lab`, `loadgen`, and `profile`
/// all parse `--format text|json` through [`parse_format`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

/// Every subcommand funnels `--flag value` pairs through here so that
/// "missing value" diagnostics read the same everywhere.
fn flag_value<'a, I: Iterator<Item = &'a String>>(
    cmd: &str,
    flag: &str,
    it: &mut I,
) -> Result<&'a str, SsgError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| SsgError::Usage(format!("{cmd}: {flag} needs a value")))
}

/// `--flag value` where the value must parse as `T`.
fn parse_flag<'a, T, I>(cmd: &str, flag: &str, it: &mut I) -> Result<T, SsgError>
where
    T: std::str::FromStr,
    I: Iterator<Item = &'a String>,
{
    let raw = flag_value(cmd, flag, it)?;
    raw.parse()
        .map_err(|_| SsgError::Usage(format!("{cmd}: {flag} got `{raw}`, expected a number")))
}

/// `--format text|json`.
fn parse_format<'a, I: Iterator<Item = &'a String>>(
    cmd: &str,
    it: &mut I,
) -> Result<OutputFormat, SsgError> {
    match flag_value(cmd, "--format", it)? {
        "text" => Ok(OutputFormat::Text),
        "json" => Ok(OutputFormat::Json),
        other => Err(SsgError::Usage(format!(
            "{cmd}: --format must be `text` or `json`, got `{other}`"
        ))),
    }
}

/// `--palette list|bitset`.
fn parse_palette<'a, I: Iterator<Item = &'a String>>(
    cmd: &str,
    it: &mut I,
) -> Result<PaletteKind, SsgError> {
    flag_value(cmd, "--palette", it)?
        .parse()
        .map_err(|e: String| SsgError::Usage(format!("{cmd}: --palette: {e}")))
}

/// A positional argument that must parse as `T`.
fn parse_positional<T: std::str::FromStr>(
    cmd: &str,
    what: &str,
    raw: Option<&String>,
) -> Result<T, SsgError> {
    let raw = raw.ok_or_else(|| SsgError::Usage(format!("{cmd}: missing {what}")))?;
    raw.parse()
        .map_err(|_| SsgError::Usage(format!("{cmd}: bad {what} `{raw}`")))
}

/// `d1[,d2,...]` → a validated separation vector.
fn parse_separations(cmd: &str, spec: &str) -> Result<SeparationVector, SsgError> {
    let deltas: Result<Vec<u32>, _> = spec.split(',').map(str::parse).collect();
    let deltas =
        deltas.map_err(|_| SsgError::Usage(format!("{cmd}: bad separation list `{spec}`")))?;
    Ok(SeparationVector::new(deltas)?)
}

fn parse_seed(arg: Option<&String>) -> u64 {
    arg.and_then(|a| a.parse().ok()).unwrap_or(42)
}

// ---------------------------------------------------------------------------
// gen / classify
// ---------------------------------------------------------------------------

fn cmd_gen(args: &[String]) -> Result<i32, SsgError> {
    let kind = args.first().map(String::as_str).ok_or_else(|| {
        SsgError::Usage("ssg gen corridor|platoon|backbone <n> [...] [seed]".into())
    })?;
    let n: usize = parse_positional("gen", "vertex count", args.get(1))?;
    if n < 1 {
        return Err(SsgError::Usage("gen: need a positive vertex count".into()));
    }
    let g = match kind {
        "corridor" => {
            let seed = parse_seed(args.get(2));
            let mut rng = StdRng::seed_from_u64(seed);
            CorridorNetwork::generate(n, 1.0, 1.0, 5.0, &mut rng)
                .graph()
                .clone()
        }
        "platoon" => {
            let k: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(4);
            let seed = parse_seed(args.get(3));
            let mut rng = StdRng::seed_from_u64(seed);
            VehicularNetwork::platoon(n, k, &mut rng).graph().clone()
        }
        "backbone" => {
            let seed = parse_seed(args.get(2));
            let mut rng = StdRng::seed_from_u64(seed);
            BackboneNetwork::generate(n, 4, &mut rng).graph().clone()
        }
        other => {
            return Err(SsgError::Usage(format!("gen: unknown workload '{other}'")));
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if writeln!(out, "{} {}", g.num_vertices(), g.num_edges()).is_err() {
        return Ok(0); // closed pipe
    }
    for (u, v) in g.edges() {
        if writeln!(out, "{u} {v}").is_err() {
            return Ok(0);
        }
    }
    Ok(0)
}

fn read_graph(path: &str) -> Result<Graph, SsgError> {
    let file = std::fs::File::open(path).map_err(|e| SsgError::io(path, &e))?;
    let mut lines = BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| SsgError::parse(path, "empty file"))?
        .map_err(|e| SsgError::io(path, &e))?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .ok_or_else(|| SsgError::parse(path, "missing n"))?
        .parse()
        .map_err(|_| SsgError::parse(path, "bad n"))?;
    let m: usize = it
        .next()
        .ok_or_else(|| SsgError::parse(path, "missing m"))?
        .parse()
        .map_err(|_| SsgError::parse(path, "bad m"))?;
    // Stream straight into the CSR builder: no intermediate edge Vec, and
    // bad endpoints surface once at `build()` with the offending edge.
    let mut builder = GraphBuilder::with_capacity(n, m);
    for line in lines {
        let line = line.map_err(|e| SsgError::io(path, &e))?;
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .ok_or_else(|| SsgError::parse(path, "missing u"))?
            .parse()
            .map_err(|_| SsgError::parse(path, "bad u"))?;
        let v: u32 = it
            .next()
            .ok_or_else(|| SsgError::parse(path, "missing v"))?
            .parse()
            .map_err(|_| SsgError::parse(path, "bad v"))?;
        builder.add_edge(u, v);
    }
    if builder.edge_records() != m {
        return Err(SsgError::parse(
            path,
            format!("expected {m} edges, found {}", builder.edge_records()),
        ));
    }
    builder
        .build()
        .map_err(|e| SsgError::parse(path, e.to_string()))
}

fn cmd_classify(args: &[String]) -> Result<i32, SsgError> {
    let path = args
        .first()
        .ok_or_else(|| SsgError::Usage("ssg classify <file>".into()))?;
    let g = read_graph(path)?;
    println!(
        "n={} m={} class={:?}",
        g.num_vertices(),
        g.num_edges(),
        default_registry().classify(&g)
    );
    Ok(0)
}

// ---------------------------------------------------------------------------
// color
// ---------------------------------------------------------------------------

fn guarantee_str(g: &Guarantee) -> String {
    match g {
        Guarantee::Optimal => "optimal".to_string(),
        Guarantee::Approximation(f) => format!("{f}-approx"),
        Guarantee::Heuristic => "heuristic".to_string(),
    }
}

/// Prints a flight recorder's span log to stderr, one line per event, so
/// `--trace` composes with both text and JSON stdout formats.
fn print_trace(recorder: &FlightRecorder) {
    let events = recorder.events();
    eprintln!(
        "trace: {} event(s), {} dropped, {} incident(s)",
        events.len(),
        recorder.dropped(),
        recorder.incident_count()
    );
    for e in &events {
        eprintln!(
            "trace: [req {:>3}] {:<8} {:<30} span={} parent={} start={}ns dur={}ns",
            e.trace_id,
            e.kind.name(),
            e.name,
            e.span_id,
            e.parent_id,
            e.start_ns,
            e.end_ns.saturating_sub(e.start_ns)
        );
    }
}

fn cmd_color(args: &[String]) -> Result<i32, SsgError> {
    let usage = || {
        SsgError::Usage(
            "ssg color <file> <d1[,d2,...]> [--palette list|bitset] [--format text|json] [--trace]"
                .into(),
        )
    };
    let (path, sep_spec) = match (args.first(), args.get(1)) {
        (Some(p), Some(s)) => (p, s),
        _ => return Err(usage()),
    };
    let mut format = OutputFormat::Text;
    let mut trace = false;
    let mut palette = PaletteKind::default();
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--palette" => palette = parse_palette("color", &mut it)?,
            "--format" => format = parse_format("color", &mut it)?,
            "--trace" => trace = true,
            other => {
                return Err(SsgError::Usage(format!("color: unknown flag '{other}'")));
            }
        }
    }
    let sep = parse_separations("color", sep_spec)?;
    let g = read_graph(path)?;
    let mut ws = Workspace::with_palette(palette);
    let metrics = if trace {
        Metrics::with_tracing(4096)
    } else {
        Metrics::disabled()
    };
    let out = default_registry().auto_coloring(&g, &sep, &mut ws, &metrics);
    if let Some(recorder) = metrics.recorder() {
        print_trace(recorder);
    }
    let violations = all_violations(&g, &sep, out.labeling.colors());
    match format {
        OutputFormat::Text => {
            println!(
                "class={:?} algorithm=\"{}\" guarantee={} span={} channels={} violations={}",
                out.class,
                out.algorithm,
                guarantee_str(&out.guarantee),
                out.labeling.span(),
                out.labeling.distinct_colors(),
                violations.len()
            );
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            for (v, c) in out.labeling.colors().iter().enumerate() {
                // A closed pipe (e.g. `| head`) is a normal way to stop
                // reading.
                if writeln!(w, "{v} {c}").is_err() {
                    break;
                }
            }
        }
        OutputFormat::Json => {
            let doc = Json::Object(vec![
                ("schema".into(), Json::Str("ssg-color/v1".into())),
                ("class".into(), Json::Str(format!("{:?}", out.class))),
                ("algorithm".into(), Json::Str(out.algorithm.to_string())),
                ("guarantee".into(), Json::Str(guarantee_str(&out.guarantee))),
                ("span".into(), Json::U64(u64::from(out.labeling.span()))),
                (
                    "channels".into(),
                    Json::U64(out.labeling.distinct_colors() as u64),
                ),
                ("violations".into(), Json::U64(violations.len() as u64)),
                (
                    "colors".into(),
                    Json::Array(
                        out.labeling
                            .colors()
                            .iter()
                            .map(|&c| Json::U64(u64::from(c)))
                            .collect(),
                    ),
                ),
            ]);
            print!("{}", doc.render_pretty());
        }
    }
    Ok(if violations.is_empty() { 0 } else { 1 })
}

// ---------------------------------------------------------------------------
// batch
// ---------------------------------------------------------------------------

/// Parses one request-file line (already trimmed, non-empty, not a
/// comment) into a [`LabelRequest`] with `id = lineno`.
fn parse_request_line(path: &str, lineno: usize, line: &str) -> Result<LabelRequest, SsgError> {
    let mut fields = line.split_whitespace();
    let ctx = format!("{path}:{lineno}");
    let workload = fields
        .next()
        .ok_or_else(|| SsgError::parse(&ctx, "missing workload"))?;
    let n: usize = fields
        .next()
        .ok_or_else(|| SsgError::parse(&ctx, "missing n"))?
        .parse()
        .map_err(|_| SsgError::parse(&ctx, "bad n"))?;
    let seed: u64 = fields
        .next()
        .ok_or_else(|| SsgError::parse(&ctx, "missing seed"))?
        .parse()
        .map_err(|_| SsgError::parse(&ctx, "bad seed"))?;
    let sep_spec = fields
        .next()
        .ok_or_else(|| SsgError::parse(&ctx, "missing separation list"))?;
    let sep = parse_separations(&ctx, sep_spec)?;

    let instance = if let Some(file) = workload.strip_prefix("file:") {
        RequestInstance::Graph(read_graph(file)?)
    } else {
        if n < 1 {
            return Err(SsgError::parse(&ctx, "need a positive vertex count"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match workload {
            "corridor" => RequestInstance::Interval(
                CorridorNetwork::generate(n, 1.0, 1.0, 5.0, &mut rng)
                    .representation()
                    .clone(),
            ),
            "platoon" => RequestInstance::UnitInterval(
                VehicularNetwork::platoon(n, 4, &mut rng)
                    .representation()
                    .clone(),
            ),
            "backbone" => {
                RequestInstance::Tree(BackboneNetwork::generate(n, 4, &mut rng).tree().clone())
            }
            other => {
                return Err(SsgError::parse(
                    &ctx,
                    format!("unknown workload `{other}` (corridor|platoon|backbone|file:<path>)"),
                ));
            }
        }
    };

    let mut req = LabelRequest::new(lineno as u64, instance, sep);
    for opt in fields {
        if let Some(name) = opt.strip_prefix("solver=") {
            req = req.solver(name);
        } else if let Some(ms) = opt.strip_prefix("deadline_ms=") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| SsgError::parse(&ctx, format!("bad deadline `{opt}`")))?;
            req = req.timeout(Duration::from_millis(ms));
        } else {
            return Err(SsgError::parse(&ctx, format!("unknown option `{opt}`")));
        }
    }
    Ok(req)
}

/// Reads a whole `.reqs` file; `#` comments and blank lines are skipped.
fn read_requests(path: &str) -> Result<Vec<LabelRequest>, SsgError> {
    let file = std::fs::File::open(path).map_err(|e| SsgError::io(path, &e))?;
    let mut requests = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| SsgError::io(path, &e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        requests.push(parse_request_line(path, idx + 1, trimmed)?);
    }
    if requests.is_empty() {
        return Err(SsgError::parse(path, "no requests in file"));
    }
    Ok(requests)
}

fn response_to_json(r: &LabelResponse) -> Json {
    let mut obj = vec![
        ("id".into(), Json::U64(r.id)),
        ("batch_index".into(), Json::U64(r.batch_index as u64)),
        ("worker".into(), Json::U64(r.worker as u64)),
        ("ok".into(), Json::Bool(r.result.is_ok())),
    ];
    match &r.result {
        Ok(out) => {
            obj.push(("algorithm".into(), Json::Str(out.algorithm.clone())));
            obj.push(("span".into(), Json::U64(u64::from(out.labeling.span()))));
            obj.push((
                "channels".into(),
                Json::U64(out.labeling.distinct_colors() as u64),
            ));
            obj.push(("wall_ns".into(), Json::U64(out.wall.as_nanos() as u64)));
        }
        Err(e) => {
            obj.push((
                "error".into(),
                Json::Object(vec![
                    ("kind".into(), Json::Str(e.kind().into())),
                    ("message".into(), Json::Str(e.to_string())),
                ]),
            ));
        }
    }
    Json::Object(obj)
}

/// Span-event capacity of the `ssg batch` flight recorder: enough for the
/// full chains of a few thousand requests before the ring starts dropping
/// the oldest events.
const BATCH_RECORDER_CAPACITY: usize = 16 * 1024;

fn cmd_batch(args: &[String]) -> Result<i32, SsgError> {
    let path = args.first().ok_or_else(|| {
        SsgError::Usage(
            "ssg batch <file.reqs> [--workers N] [--queue-cap N] [--fail-fast] \
             [--palette list|bitset] [--format text|json] [--trace] [--trace-dump <path>] \
             [--trace-export <path>]"
                .into(),
        )
    })?;
    let mut workers: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut backpressure = Backpressure::Block;
    let mut format = OutputFormat::Text;
    let mut trace = false;
    let mut trace_dump: Option<String> = None;
    let mut trace_export: Option<String> = None;
    let mut palette = PaletteKind::default();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--palette" => palette = parse_palette("batch", &mut it)?,
            "--workers" => {
                let w: usize = parse_flag("batch", "--workers", &mut it)?;
                if w < 1 {
                    return Err(SsgError::Usage("batch: --workers needs >= 1".into()));
                }
                workers = Some(w);
            }
            "--queue-cap" => {
                let c: usize = parse_flag("batch", "--queue-cap", &mut it)?;
                if c < 1 {
                    return Err(SsgError::Usage("batch: --queue-cap needs >= 1".into()));
                }
                queue_cap = Some(c);
            }
            "--fail-fast" => backpressure = Backpressure::FailFast,
            "--format" => format = parse_format("batch", &mut it)?,
            "--trace" => trace = true,
            "--trace-dump" => {
                trace_dump = Some(flag_value("batch", "--trace-dump", &mut it)?.to_string());
            }
            "--trace-export" => {
                trace_export = Some(flag_value("batch", "--trace-export", &mut it)?.to_string());
            }
            other => {
                return Err(SsgError::Usage(format!("batch: unknown flag '{other}'")));
            }
        }
    }

    let requests = read_requests(path)?;
    let total = requests.len();
    // Batch always flies with the recorder on: a deadline miss or panic in
    // the field is exactly when the span chain is worth having, and the
    // per-request cost is dwarfed by the solve itself.
    let metrics = Metrics::with_tracing(BATCH_RECORDER_CAPACITY);
    let mut builder = Engine::builder()
        .backpressure(backpressure)
        .palette(palette)
        .metrics(metrics.clone());
    if let Some(w) = workers {
        builder = builder.workers(w);
    }
    if let Some(c) = queue_cap {
        builder = builder.queue_capacity(c);
    }
    let engine = builder.build();
    let worker_count = engine.workers();
    let responses = engine.run_batch(requests);
    let stats = engine.stats();
    engine.shutdown();

    let first_error = responses
        .iter()
        .find_map(|r| r.result.as_ref().err())
        .cloned();
    let failed = responses.iter().filter(|r| r.result.is_err()).count();

    match format {
        OutputFormat::Text => {
            for r in &responses {
                match &r.result {
                    Ok(out) => println!(
                        "req {}: ok algorithm=\"{}\" span={} channels={} wall_us={} worker={}",
                        r.id,
                        out.algorithm,
                        out.labeling.span(),
                        out.labeling.distinct_colors(),
                        out.wall.as_micros(),
                        r.worker
                    ),
                    Err(e) => println!("req {}: error kind={} {e}", r.id, e.kind()),
                }
            }
            println!(
                "# workers={worker_count} requests={total} failed={failed} steals={} \
                 backpressure_waits={} deadline_misses={} panics={}",
                stats.steals, stats.backpressure_waits, stats.deadline_misses, stats.panics
            );
        }
        OutputFormat::Json => {
            let doc = Json::Object(vec![
                ("schema".into(), Json::Str("ssg-batch/v1".into())),
                ("workers".into(), Json::U64(worker_count as u64)),
                ("requests".into(), Json::U64(total as u64)),
                ("failed".into(), Json::U64(failed as u64)),
                (
                    "stats".into(),
                    Json::Object(vec![
                        ("submitted".into(), Json::U64(stats.submitted)),
                        ("completed".into(), Json::U64(stats.completed)),
                        ("steals".into(), Json::U64(stats.steals)),
                        (
                            "backpressure_waits".into(),
                            Json::U64(stats.backpressure_waits),
                        ),
                        ("deadline_misses".into(), Json::U64(stats.deadline_misses)),
                        ("panics".into(), Json::U64(stats.panics)),
                    ]),
                ),
                (
                    "responses".into(),
                    Json::Array(responses.iter().map(response_to_json).collect()),
                ),
            ]);
            print!("{}", doc.render_pretty());
        }
    }

    if let Some(recorder) = metrics.recorder() {
        if trace {
            print_trace(recorder);
        }
        let incidents = recorder.incident_count();
        // An explicit --trace-dump always writes; a deadline miss or worker
        // panic auto-dumps next to the request file so the evidence
        // survives the process.
        let dump_to = trace_dump.or_else(|| (incidents > 0).then(|| format!("{path}.trace.json")));
        if let Some(dump_path) = dump_to {
            std::fs::write(&dump_path, recorder.to_json().render_pretty())
                .map_err(|e| SsgError::io(&dump_path, &e))?;
            eprintln!(
                "trace: wrote flight-recorder dump ({} incident(s)) to {dump_path}",
                incidents
            );
        }
        if let Some(export_path) = &trace_export {
            let dump = TraceDump::from_json(&recorder.to_json())
                .map_err(|e| SsgError::parse(export_path.as_str(), e))?;
            let doc = export::chrome_trace(&[("batch", &dump)]);
            std::fs::write(export_path, doc.render_pretty())
                .map_err(|e| SsgError::io(export_path.as_str(), &e))?;
            eprintln!(
                "trace: wrote trace-event export ({} event(s)) to {export_path}",
                dump.events.len()
            );
        }
    }

    // Per-request failures are values; the process exit code reports the
    // first one through the same single map as top-level errors.
    Ok(first_error.as_ref().map_or(0, exit_code))
}

// ---------------------------------------------------------------------------
// churn / bench
// ---------------------------------------------------------------------------

/// One policy's run rendered as an `ssg-churn/v1` object: aggregates,
/// per-epoch spans and recolored/frozen counts, and the epoch-solve
/// quantile summary.
fn churn_policy_json(name: &str, rep: &ChurnReport) -> Json {
    Json::Object(vec![
        ("policy".into(), Json::Str(name.into())),
        ("mean_stations".into(), Json::F64(rep.mean_stations)),
        ("mean_span".into(), Json::F64(rep.mean_span)),
        ("max_span".into(), Json::U64(u64::from(rep.max_span))),
        ("mean_churn".into(), Json::F64(rep.mean_churn)),
        ("total_retunes".into(), Json::U64(rep.total_retunes as u64)),
        ("full_resolves".into(), Json::U64(rep.full_resolves as u64)),
        (
            "epoch_spans".into(),
            Json::Array(
                rep.epoch_spans
                    .iter()
                    .map(|&s| Json::U64(u64::from(s)))
                    .collect(),
            ),
        ),
        (
            "epoch_recolored".into(),
            Json::Array(
                rep.epoch_recolored
                    .iter()
                    .map(|&c| Json::U64(c as u64))
                    .collect(),
            ),
        ),
        (
            "epoch_frozen".into(),
            Json::Array(
                rep.epoch_frozen
                    .iter()
                    .map(|&c| Json::U64(c as u64))
                    .collect(),
            ),
        ),
        ("epoch_solve".into(), rep.epoch_solve.summary_json()),
    ])
}

/// The envelope stamped on `ssg churn --format json` reports.
const CHURN_ENVELOPE: ReportEnvelope = ReportEnvelope::new("ssg-churn/v1");

/// `ssg churn [epochs] [seed] [--incremental] [--format text|json]`.
///
/// From-scratch mode reruns `OptimalL1` and `Greedy` every epoch;
/// `--incremental` instead races the delta-patching path against the
/// from-scratch optimum on the same seed and checks per-epoch span
/// equality (exit 1 on divergence — the certificate contract is violated).
/// `--format json` emits an `ssg-churn/v1` document with per-epoch spans,
/// recolored counts, and epoch-solve quantiles.
fn cmd_churn(args: &[String]) -> Result<i32, SsgError> {
    let mut positional: Vec<&String> = Vec::new();
    let mut incremental = false;
    let mut format = OutputFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--incremental" => incremental = true,
            "--format" => format = parse_format("churn", &mut it)?,
            other if other.starts_with("--") => {
                return Err(SsgError::Usage(format!(
                    "churn: unknown flag '{other}' (usage: ssg churn [epochs] [seed] \
                     [--incremental] [--format text|json])"
                )));
            }
            _ => positional.push(arg),
        }
    }
    let epochs: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let seed = parse_seed(positional.get(1).copied());
    // The from-scratch demo uses a dense corridor (big spans, heavy
    // retuning); the incremental demo spreads the same fleet over a long
    // sparse corridor so distance-2 dirty regions stay small enough for
    // the patching path to shine instead of tripping its size fallback.
    let cfg = if incremental {
        DynamicsConfig::default()
            .initial(100)
            .epochs(epochs)
            .p_depart(0.04)
            .arrivals_max(4)
            .corridor_len(400.0)
            .range_min(1.0)
            .range_max(2.0)
            .t(2)
    } else {
        DynamicsConfig::default()
            .initial(100)
            .epochs(epochs)
            .p_depart(0.08)
            .arrivals_max(10)
            .corridor_len(60.0)
            .range_min(1.0)
            .range_max(4.0)
            .t(2)
    };

    let mut runs: Vec<(&str, ChurnReport)> = Vec::new();
    if incremental {
        let full = simulate_corridor(cfg, Policy::OptimalL1, &mut StdRng::seed_from_u64(seed));
        let inc = simulate_corridor_incremental(cfg, &mut StdRng::seed_from_u64(seed));
        runs.push(("optimal_l1", full));
        runs.push(("incremental", inc));
    } else {
        for (name, policy) in [
            ("optimal_l1", Policy::OptimalL1),
            ("greedy", Policy::Greedy),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            runs.push((name, simulate_corridor(cfg, policy, &mut rng)));
        }
    }
    let spans_match = !incremental || runs[0].1.epoch_spans == runs[1].1.epoch_spans;

    if format == OutputFormat::Json {
        let doc = CHURN_ENVELOPE.stamp(vec![
            ("epochs".into(), Json::U64(epochs as u64)),
            ("seed".into(), Json::U64(seed)),
            ("incremental".into(), Json::Bool(incremental)),
            ("spans_match".into(), Json::Bool(spans_match)),
            (
                "policies".into(),
                Json::Array(runs.iter().map(|(n, r)| churn_policy_json(n, r)).collect()),
            ),
        ]);
        println!("{}", doc.render_pretty());
    } else {
        for (name, rep) in &runs {
            println!(
                "{name}: epochs={} mean_stations={:.1} mean_span={:.2} max_span={} mean_churn={:.1}% retunes={}",
                rep.epochs,
                rep.mean_stations,
                rep.mean_span,
                rep.max_span,
                rep.mean_churn * 100.0,
                rep.total_retunes
            );
            println!(
                "  epoch solve: p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us",
                rep.epoch_solve.p50() as f64 / 1e3,
                rep.epoch_solve.p90() as f64 / 1e3,
                rep.epoch_solve.p99() as f64 / 1e3,
                rep.epoch_solve.max() as f64 / 1e3,
            );
            if incremental {
                println!(
                    "  recolored={} frozen={} full_resolves={}/{}",
                    rep.epoch_recolored.iter().sum::<usize>(),
                    rep.epoch_frozen.iter().sum::<usize>(),
                    rep.full_resolves,
                    rep.epochs,
                );
            }
        }
        if incremental {
            println!(
                "spans match from-scratch optimum: {}",
                if spans_match { "yes" } else { "NO" }
            );
        }
    }
    if !spans_match {
        eprintln!("ssg: incremental spans diverged from the from-scratch optimum");
        return Ok(1);
    }
    Ok(0)
}

/// `ssg metrics`: runs all five registry algorithms plus a small engine
/// batch on one enabled [`Metrics`] handle, then prints the snapshot in
/// Prometheus text exposition format — every counter, phase timer, latency
/// histogram, and gauge the stack records, ready to scrape or diff.
fn cmd_metrics(args: &[String]) -> Result<i32, SsgError> {
    let mut n: usize = 256;
    let mut seed: u64 = 42;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--n" => {
                n = parse_flag("metrics", "--n", &mut it)?;
                if n < 2 {
                    return Err(SsgError::Usage("metrics: --n needs an integer >= 2".into()));
                }
            }
            "--seed" => seed = parse_flag("metrics", "--seed", &mut it)?,
            other => {
                return Err(SsgError::Usage(format!(
                    "metrics: unknown flag '{other}' (usage: ssg metrics [--n N] [--seed S])"
                )));
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let corridor = CorridorNetwork::generate(n, 1.0, 1.0, 5.0, &mut rng);
    let platoon = VehicularNetwork::platoon(n, 4, &mut rng);
    let backbone = BackboneNetwork::generate(n, 4, &mut rng);
    let ones = SeparationVector::all_ones(2);
    let d1_one = SeparationVector::delta1_then_ones(4, 2)?;
    let d1_d2 = SeparationVector::two(5, 2)?;

    let metrics = Metrics::enabled();
    let registry = default_registry();
    let mut ws = Workspace::new();
    let problems = [
        (
            "interval_l1",
            Problem::interval(corridor.representation(), &ones),
        ),
        (
            "interval_approx_delta1",
            Problem::interval(corridor.representation(), &d1_one),
        ),
        (
            "unit_interval_l_delta1_delta2",
            Problem::unit_interval(platoon.representation(), &d1_d2),
        ),
        ("tree_l1", Problem::tree(backbone.tree(), &ones)),
        (
            "tree_approx_delta1",
            Problem::tree(backbone.tree(), &d1_one),
        ),
    ];
    for (name, problem) in &problems {
        let lab = registry.solve(name, problem, &mut ws, &metrics);
        ws.recycle(lab);
    }
    // A small engine batch populates queue-wait, end-to-end latency, and
    // the queue-depth / in-flight gauges.
    let engine = Engine::builder()
        .workers(2)
        .metrics(metrics.clone())
        .build();
    let batch: Vec<LabelRequest> = (0..16)
        .map(|i| {
            LabelRequest::new(
                i,
                RequestInstance::Interval(corridor.representation().clone()),
                ones.clone(),
            )
            .solver("interval_l1")
        })
        .collect();
    let _ = engine.run_batch(batch);
    engine.shutdown();

    // Same renderer the `GET /metrics` endpoint uses — one function, two
    // callers, so the CLI and the scrape endpoint can never drift.
    print!("{}", strongly_simplicial::net::prometheus_text(&metrics));
    Ok(0)
}

fn cmd_bench(args: &[String]) -> Result<i32, SsgError> {
    let mut cfg = BenchConfig::default();
    let mut format = OutputFormat::Text;
    let mut compare: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => format = parse_format("bench", &mut it)?,
            "--compare" => {
                let path = it.next().ok_or_else(|| {
                    SsgError::Usage("bench: --compare needs a baseline JSON path".into())
                })?;
                compare = Some(path.clone());
            }
            "--n" => {
                let n: usize = parse_flag("bench", "--n", &mut it)?;
                if n < 2 {
                    return Err(SsgError::Usage("bench: --n needs an integer >= 2".into()));
                }
                cfg = cfg.n(n);
            }
            "--reps" => {
                let r: usize = parse_flag("bench", "--reps", &mut it)?;
                if r < 1 {
                    return Err(SsgError::Usage(
                        "bench: --reps needs an integer >= 1".into(),
                    ));
                }
                cfg = cfg.reps(r);
            }
            "--seed" => {
                let s: u64 = parse_flag("bench", "--seed", &mut it)?;
                cfg = cfg.seed(s);
            }
            "--repeat" => {
                let k: usize = parse_flag("bench", "--repeat", &mut it)?;
                if k < 1 {
                    return Err(SsgError::Usage(
                        "bench: --repeat needs an integer >= 1".into(),
                    ));
                }
                cfg = cfg.repeat(k);
            }
            "--palette" => cfg = cfg.palette(parse_palette("bench", &mut it)?),
            other => {
                return Err(SsgError::Usage(format!(
                    "bench: unknown flag '{other}' (usage: ssg bench [--format text|json] [--n N] [--reps R] [--seed S] [--repeat K] [--palette list|bitset] [--compare BASELINE.json])"
                )));
            }
        }
    }
    let report = run_benchmarks(&cfg);
    if format == OutputFormat::Json {
        print!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.to_text());
    }
    if let Some(path) = compare {
        let text = std::fs::read_to_string(&path).map_err(|e| SsgError::io(&path, &e))?;
        let baseline = Json::parse(&text)
            .map_err(|e| SsgError::parse(&path, format!("not valid JSON: {e}")))?;
        let diff =
            diff_against_baseline(&report, &baseline).map_err(|e| SsgError::parse(&path, e))?;
        print!("{}", diff.render());
        if !diff.is_clean() {
            return Ok(1);
        }
    }
    Ok(0)
}

// ---------------------------------------------------------------------------
// lab
// ---------------------------------------------------------------------------

const LAB_USAGE: &str = "ssg lab run <spec.lab> --dir DIR [--baseline TABLE.json] \
                         [--palette list|bitset] [--format text|json] | \
                         ssg lab resume <dir> [--baseline TABLE.json] \
                         [--palette list|bitset] [--format text|json] | \
                         ssg lab report <dir> [--format text|json]";

/// Reads and parses one JSON document (a committed lab baseline table).
fn read_json_file(path: &str) -> Result<Json, SsgError> {
    let text = std::fs::read_to_string(path).map_err(|e| SsgError::io(path, &e))?;
    Json::parse(&text).map_err(|e| SsgError::parse(path, format!("not valid JSON: {e}")))
}

/// `ssg lab run|resume|report` — the scenario-matrix front end.
///
/// `run` expands a spec file into its cell matrix and executes every cell
/// the run directory's row log does not already cover; `resume` does the
/// same from the spec pinned inside the directory; `report` rebuilds the
/// table from the rows without executing anything. All three share one
/// output path: `--format text` prints the verdict plus the aligned
/// table, `--format json` prints the deterministic `ssg-lab/v1` table —
/// the artifact committed as a baseline. With `--baseline` the table is
/// diffed with the same span-drift discipline as `ssg bench --compare`
/// (exit 1 on drift, flight-recorder dump next to each offending row).
/// `--palette` re-runs the matrix on the named palette backend for cells
/// whose spec does not pin one — spans are palette-invariant, so the same
/// committed baseline gates both backends.
fn cmd_lab(args: &[String]) -> Result<i32, SsgError> {
    let usage = || SsgError::Usage(LAB_USAGE.into());
    let verb = args.first().map(String::as_str).ok_or_else(usage)?;
    let mut positional: Vec<&String> = Vec::new();
    let mut dir: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut palette: Option<PaletteKind> = None;
    let mut format = OutputFormat::Text;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => dir = Some(flag_value("lab", "--dir", &mut it)?.to_string()),
            "--baseline" => {
                baseline_path = Some(flag_value("lab", "--baseline", &mut it)?.to_string());
            }
            "--palette" => palette = Some(parse_palette("lab", &mut it)?),
            "--format" => format = parse_format("lab", &mut it)?,
            other if other.starts_with("--") => {
                return Err(SsgError::Usage(format!(
                    "lab: unknown flag '{other}' (usage: {LAB_USAGE})"
                )));
            }
            _ => positional.push(arg),
        }
    }
    let baseline = baseline_path.as_deref().map(read_json_file).transpose()?;

    let summary = match verb {
        "run" => {
            let spec_path = positional
                .first()
                .ok_or_else(|| SsgError::Usage("lab run: missing <spec.lab>".into()))?;
            let dir = dir.ok_or_else(|| SsgError::Usage("lab run: --dir is required".into()))?;
            let text = std::fs::read_to_string(spec_path.as_str())
                .map_err(|e| SsgError::io(spec_path.as_str(), &e))?;
            let spec = LabSpec::parse(&text)?;
            run_lab_with_palette(
                std::path::Path::new(&dir),
                &spec,
                baseline.as_ref(),
                palette,
            )?
        }
        "resume" => {
            let dir = positional
                .first()
                .ok_or_else(|| SsgError::Usage("lab resume: missing <dir>".into()))?;
            let dir = std::path::Path::new(dir.as_str());
            let spec = load_dir_spec(dir)?;
            run_lab_with_palette(dir, &spec, baseline.as_ref(), palette)?
        }
        "report" => {
            if baseline.is_some() {
                return Err(SsgError::Usage(
                    "lab report: --baseline only applies to `lab run` / `lab resume`".into(),
                ));
            }
            if palette.is_some() {
                return Err(SsgError::Usage(
                    "lab report: --palette only applies to `lab run` / `lab resume`".into(),
                ));
            }
            let dir = positional
                .first()
                .ok_or_else(|| SsgError::Usage("lab report: missing <dir>".into()))?;
            report_dir(std::path::Path::new(dir.as_str()))?
        }
        other => {
            return Err(SsgError::Usage(format!(
                "lab: unknown verb '{other}' (usage: {LAB_USAGE})"
            )));
        }
    };
    print_lab_summary(&summary, format, baseline.is_some())
}

/// Shared `lab` output path: table to stdout, verdict and gate results to
/// stderr in JSON mode so stdout stays the pure committable table.
fn print_lab_summary(
    summary: &LabSummary,
    format: OutputFormat,
    gated: bool,
) -> Result<i32, SsgError> {
    let checked = summary
        .table
        .get("cells")
        .and_then(Json::as_array)
        .map_or(0, |cells| cells.len());
    match format {
        OutputFormat::Json => {
            print!("{}", summary.table.render_pretty());
            eprintln!("{}", summary.verdict());
            if gated {
                eprint!("{}", render_drifts(checked, &summary.drifts));
            }
        }
        OutputFormat::Text => {
            println!("{}", summary.verdict());
            print!("{}", render_table_text(&summary.table));
            if gated {
                print!("{}", render_drifts(checked, &summary.drifts));
            }
        }
    }
    if !summary.failed.is_empty() {
        eprintln!(
            "ssg: {} lab cell(s) failed: {:?}",
            summary.failed.len(),
            summary.failed
        );
        return Ok(1);
    }
    if !summary.drifts.is_empty() {
        return Ok(1);
    }
    Ok(0)
}

// ---------------------------------------------------------------------------
// serve / loadgen / fetch
// ---------------------------------------------------------------------------

/// Span-event capacity of the `ssg serve` flight recorder: sized for the
/// request chains of a sustained network run before the ring recycles.
const SERVE_RECORDER_CAPACITY: usize = 16 * 1024;

fn cmd_serve(args: &[String]) -> Result<i32, SsgError> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServerConfig::default();
    let mut duration: Option<Duration> = None;
    let mut trace_dump: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = flag_value("serve", "--addr", &mut it)?.to_string(),
            "--workers" => {
                let w: usize = parse_flag("serve", "--workers", &mut it)?;
                if w < 1 {
                    return Err(SsgError::Usage("serve: --workers needs >= 1".into()));
                }
                cfg.workers = w;
            }
            "--queue-cap" => {
                let c: usize = parse_flag("serve", "--queue-cap", &mut it)?;
                if c < 1 {
                    return Err(SsgError::Usage("serve: --queue-cap needs >= 1".into()));
                }
                cfg.queue_capacity = c;
            }
            "--backpressure" => match flag_value("serve", "--backpressure", &mut it)? {
                "block" => cfg.backpressure = Backpressure::Block,
                "failfast" => cfg.backpressure = Backpressure::FailFast,
                other => {
                    return Err(SsgError::Usage(format!(
                        "serve: --backpressure must be `block` or `failfast`, got `{other}`"
                    )));
                }
            },
            "--deadline-ms" => {
                let ms: u64 = parse_flag("serve", "--deadline-ms", &mut it)?;
                cfg.default_deadline = Some(Duration::from_millis(ms));
            }
            "--max-conns" => {
                let m: usize = parse_flag("serve", "--max-conns", &mut it)?;
                if m < 1 {
                    return Err(SsgError::Usage("serve: --max-conns needs >= 1".into()));
                }
                cfg.max_conns = m;
            }
            "--duration" => {
                let secs: f64 = parse_flag("serve", "--duration", &mut it)?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(SsgError::Usage(
                        "serve: --duration needs > 0 seconds".into(),
                    ));
                }
                duration = Some(Duration::from_secs_f64(secs));
            }
            "--trace-dump" => {
                trace_dump = Some(flag_value("serve", "--trace-dump", &mut it)?.to_string());
            }
            other => {
                return Err(SsgError::Usage(format!("serve: unknown flag '{other}'")));
            }
        }
    }

    // Serve always flies with the recorder on: a deadline miss or panic
    // under live traffic is exactly when the span chain matters.
    let metrics = Metrics::with_tracing(SERVE_RECORDER_CAPACITY);
    cfg.metrics = metrics.clone();
    let server = Server::bind(addr.as_str(), cfg)?;
    // Scripts parse this line to learn the ephemeral port; flush so it is
    // visible before the first request lands.
    println!("ssg-serve: listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| SsgError::io("stdout", &e))?;

    let explicit_dump = trace_dump.is_some();
    let dump_path = trace_dump.unwrap_or_else(|| "ssg-serve.trace.json".to_string());
    let started = std::time::Instant::now();
    let mut dumped: u64 = 0;
    loop {
        std::thread::sleep(Duration::from_millis(100));
        // Any incident (deadline miss, worker panic) auto-dumps the flight
        // recorder while the evidence is still in the ring.
        if let Some(recorder) = metrics.recorder() {
            let incidents = recorder.incident_count();
            if incidents > dumped {
                std::fs::write(&dump_path, recorder.to_json().render_pretty())
                    .map_err(|e| SsgError::io(&dump_path, &e))?;
                eprintln!(
                    "ssg-serve: wrote flight-recorder dump ({incidents} incident(s)) to {dump_path}"
                );
                dumped = incidents;
            }
        }
        if server.shutdown_requested() {
            eprintln!("ssg-serve: shutdown requested, draining");
            break;
        }
        if let Some(d) = duration {
            if started.elapsed() >= d {
                eprintln!("ssg-serve: --duration elapsed, draining");
                break;
            }
        }
    }
    let stats = server.shutdown();
    // An explicit --trace-dump always writes a final post-drain dump (the
    // batch semantics), so a traced session yields a server-side file to
    // merge with client exports even when nothing went wrong.
    if explicit_dump {
        if let Some(recorder) = metrics.recorder() {
            std::fs::write(&dump_path, recorder.to_json().render_pretty())
                .map_err(|e| SsgError::io(&dump_path, &e))?;
            eprintln!(
                "ssg-serve: wrote flight-recorder dump ({} event(s)) to {dump_path}",
                recorder.events().len()
            );
        }
    }
    println!(
        "ssg-serve: drained; submitted={} completed={} deadline_misses={} panics={}",
        stats.submitted, stats.completed, stats.deadline_misses, stats.panics
    );
    Ok(0)
}

fn cmd_loadgen(args: &[String]) -> Result<i32, SsgError> {
    let mut cfg = LoadgenConfig::default();
    let mut format = OutputFormat::Text;
    let mut trace_export: Option<String> = None;
    let mut trace_dump: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = flag_value("loadgen", "--addr", &mut it)?.to_string(),
            "--rps" => cfg.rps = parse_flag("loadgen", "--rps", &mut it)?,
            "--duration" => {
                let secs: f64 = parse_flag("loadgen", "--duration", &mut it)?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(SsgError::Usage(
                        "loadgen: --duration needs > 0 seconds".into(),
                    ));
                }
                cfg.duration = Duration::from_secs_f64(secs);
            }
            "--conns" => {
                let c: usize = parse_flag("loadgen", "--conns", &mut it)?;
                if c < 1 {
                    return Err(SsgError::Usage("loadgen: --conns needs >= 1".into()));
                }
                cfg.conns = c;
            }
            "--workload" => {
                let token = flag_value("loadgen", "--workload", &mut it)?;
                cfg.spec.workload =
                    strongly_simplicial::net::Workload::parse(token).ok_or_else(|| {
                        SsgError::Usage(format!(
                            "loadgen: unknown workload `{token}` (corridor|platoon|backbone)"
                        ))
                    })?;
            }
            "--n" => {
                let n: usize = parse_flag("loadgen", "--n", &mut it)?;
                if n < 1 {
                    return Err(SsgError::Usage("loadgen: --n needs >= 1".into()));
                }
                cfg.spec.n = n;
            }
            "--seed" => cfg.spec.seed = parse_flag("loadgen", "--seed", &mut it)?,
            "--sep" => {
                let spec = flag_value("loadgen", "--sep", &mut it)?;
                cfg.spec.sep = parse_separations("loadgen", spec)?;
            }
            "--solver" => {
                cfg.spec.solver = Some(flag_value("loadgen", "--solver", &mut it)?.to_string());
            }
            "--deadline-ms" => {
                cfg.spec.deadline_ms = Some(parse_flag("loadgen", "--deadline-ms", &mut it)?);
            }
            "--timeout-ms" => {
                let ms: u64 = parse_flag("loadgen", "--timeout-ms", &mut it)?;
                cfg.timeout = Duration::from_millis(ms);
            }
            "--drain" => cfg.drain = true,
            "--format" => format = parse_format("loadgen", &mut it)?,
            "--trace-export" => {
                trace_export = Some(flag_value("loadgen", "--trace-export", &mut it)?.to_string());
            }
            "--trace-dump" => {
                trace_dump = Some(flag_value("loadgen", "--trace-dump", &mut it)?.to_string());
            }
            other => {
                return Err(SsgError::Usage(format!("loadgen: unknown flag '{other}'")));
            }
        }
    }
    // Either trace flag turns on the client-side recorder, which also
    // makes every request carry a wire-propagated trace context.
    if trace_export.is_some() || trace_dump.is_some() {
        cfg.metrics = Metrics::with_tracing(SERVE_RECORDER_CAPACITY);
    }
    let report = run_loadgen(&cfg)?;
    if let Some(recorder) = cfg.metrics.recorder() {
        if let Some(path) = &trace_dump {
            std::fs::write(path, recorder.to_json().render_pretty())
                .map_err(|e| SsgError::io(path.as_str(), &e))?;
            eprintln!("trace: wrote flight-recorder dump to {path}");
        }
        if let Some(path) = &trace_export {
            let dump = TraceDump::from_json(&recorder.to_json())
                .map_err(|e| SsgError::parse(path.as_str(), e))?;
            let doc = export::chrome_trace(&[("client", &dump)]);
            std::fs::write(path, doc.render_pretty())
                .map_err(|e| SsgError::io(path.as_str(), &e))?;
            eprintln!(
                "trace: wrote trace-event export ({} event(s)) to {path}",
                dump.events.len()
            );
        }
    }
    if format == OutputFormat::Json {
        print!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.to_text());
    }
    // A run that couldn't speak the protocol, or never completed anything,
    // failed even if the report printed.
    Ok(
        if report.protocol_errors > 0 || (report.ok + report.server_errors) == 0 {
            1
        } else {
            0
        },
    )
}

/// `ssg fetch <addr> <path> [--post BODY] [--trace-id HEX] [--trace-dump
/// <path>] [--trace-export <path>]` — one HTTP request against a front
/// door, body to stdout. The hermetic substitute for `curl` in
/// scripts/verify.sh. `--trace-id` propagates the given trace id to the
/// server via `X-Ssg-Trace` and records a local `client.request` span
/// around the exchange; `--trace-dump` writes that recorder's raw
/// `ssg-trace/v1` JSON and `--trace-export` its Chrome trace-event form.
fn cmd_fetch(args: &[String]) -> Result<i32, SsgError> {
    let usage = || {
        SsgError::Usage(
            "ssg fetch <addr> <path> [--post BODY] [--trace-id HEX] \
             [--trace-dump <path>] [--trace-export <path>]"
                .into(),
        )
    };
    let (addr, path) = match (args.first(), args.get(1)) {
        (Some(a), Some(p)) if !p.starts_with("--") => (a.as_str(), p.as_str()),
        _ => return Err(usage()),
    };
    let mut post: Option<String> = None;
    let mut trace_id: Option<u64> = None;
    let mut trace_dump: Option<String> = None;
    let mut trace_export: Option<String> = None;
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--post" => post = Some(flag_value("fetch", "--post", &mut it)?.to_string()),
            "--trace-id" => {
                let raw = flag_value("fetch", "--trace-id", &mut it)?;
                let id = u64::from_str_radix(raw, 16)
                    .map_err(|_| SsgError::Usage(format!("fetch: bad --trace-id `{raw}`")))?;
                if id == 0 {
                    return Err(SsgError::Usage("fetch: --trace-id must be nonzero".into()));
                }
                trace_id = Some(id);
            }
            "--trace-dump" => {
                trace_dump = Some(flag_value("fetch", "--trace-dump", &mut it)?.to_string());
            }
            "--trace-export" => {
                trace_export = Some(flag_value("fetch", "--trace-export", &mut it)?.to_string());
            }
            _ => return Err(usage()),
        }
    }

    // A traced fetch records its one client.request span locally, so the
    // dump can later be merged with (or checked against) the server's.
    let recorder = trace_id.map(|_| FlightRecorder::new(64));
    let span_id = recorder.as_ref().map_or(0, FlightRecorder::next_span_id);
    let trace_header = trace_id
        .map(|tid| format!("X-Ssg-Trace: {tid:016x}/{span_id:016x}\r\n"))
        .unwrap_or_default();
    let request = match &post {
        Some(body) => format!(
            "POST {path} HTTP/1.1\r\nHost: {addr}\r\n{trace_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
        None => {
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n{trace_header}Connection: close\r\n\r\n")
        }
    };

    let start = std::time::Instant::now();
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| SsgError::io(addr, &e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| SsgError::io(addr, &e))?;
    stream
        .write_all(request.as_bytes())
        .map_err(|e| SsgError::io(addr, &e))?;
    let mut raw = Vec::new();
    std::io::Read::read_to_end(&mut stream, &mut raw).map_err(|e| SsgError::io(addr, &e))?;
    if let (Some(rec), Some(tid)) = (&recorder, trace_id) {
        rec.record(strongly_simplicial::telemetry::SpanEvent {
            trace_id: tid,
            span_id,
            parent_id: 0,
            name: "client.request",
            kind: strongly_simplicial::telemetry::EventKind::Span,
            start_ns: rec.instant_ns(start),
            end_ns: rec.now_ns(),
        });
        if let Some(dump_path) = &trace_dump {
            std::fs::write(dump_path, rec.to_json().render_pretty())
                .map_err(|e| SsgError::io(dump_path.as_str(), &e))?;
        }
        if let Some(export_path) = &trace_export {
            let dump = TraceDump::from_json(&rec.to_json())
                .map_err(|e| SsgError::parse(export_path.as_str(), e))?;
            let doc = export::chrome_trace(&[("client", &dump)]);
            std::fs::write(export_path, doc.render_pretty())
                .map_err(|e| SsgError::io(export_path.as_str(), &e))?;
        }
    }
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| SsgError::parse(addr, "malformed HTTP response (no header break)"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SsgError::parse(addr, format!("bad status line `{status_line}`")))?;
    print!("{body}");
    if status == 200 {
        Ok(0)
    } else {
        eprintln!("fetch: {addr}{path} answered {status_line}");
        Ok(1)
    }
}

// ---------------------------------------------------------------------------
// trace / profile
// ---------------------------------------------------------------------------

const TRACE_USAGE: &str = "ssg trace export <dump.json> [--merge <dump2.json>] [-o <path>] | \
                           ssg trace check <trace.json> [--expect-trace HEX]";

/// Reads and re-parses one `ssg-trace/v1` flight-recorder dump file.
fn read_trace_dump(path: &str) -> Result<TraceDump, SsgError> {
    let doc = read_json_file(path)?;
    TraceDump::from_json(&doc).map_err(|e| SsgError::parse(path, e))
}

/// `ssg trace export|check` — trace-event tooling over recorder dumps.
fn cmd_trace(args: &[String]) -> Result<i32, SsgError> {
    let usage = || SsgError::Usage(TRACE_USAGE.into());
    match args.first().map(String::as_str) {
        Some("export") => {
            let mut positional: Vec<&String> = Vec::new();
            let mut merge: Option<String> = None;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--merge" => {
                        merge = Some(flag_value("trace export", "--merge", &mut it)?.to_string());
                    }
                    "-o" => out = Some(flag_value("trace export", "-o", &mut it)?.to_string()),
                    other if other.starts_with('-') => return Err(usage()),
                    _ => positional.push(arg),
                }
            }
            let dump_path = positional.first().ok_or_else(usage)?;
            if positional.len() > 1 {
                return Err(usage());
            }
            let dump = read_trace_dump(dump_path)?;
            let doc = match &merge {
                // The first dump is the client timebase; the merged dump is
                // shifted onto it.
                Some(server_path) => {
                    let server = read_trace_dump(server_path)?;
                    export::merged_chrome_trace(&dump, &server)
                }
                None => export::chrome_trace(&[("dump", &dump)]),
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, doc.render_pretty())
                        .map_err(|e| SsgError::io(&path, &e))?;
                    eprintln!("trace: wrote trace-event export to {path}");
                }
                None => print!("{}", doc.render_pretty()),
            }
            Ok(0)
        }
        Some("check") => {
            let mut positional: Vec<&String> = Vec::new();
            let mut expect: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--expect-trace" => {
                        let raw = flag_value("trace check", "--expect-trace", &mut it)?;
                        let id = u64::from_str_radix(raw, 16).map_err(|_| {
                            SsgError::Usage(format!("trace check: bad --expect-trace `{raw}`"))
                        })?;
                        expect = Some(format!("{id:016x}"));
                    }
                    other if other.starts_with('-') => return Err(usage()),
                    _ => positional.push(arg),
                }
            }
            let path = positional.first().ok_or_else(usage)?;
            if positional.len() > 1 {
                return Err(usage());
            }
            check_trace_events(path, expect.as_deref())
        }
        _ => Err(usage()),
    }
}

/// The `ssg trace check` gate: every `B` on a (pid, tid) lane must be
/// closed by a matching same-name `E` in stack order, and (optionally) the
/// expected trace id must tag at least one span. Prints a one-line verdict;
/// exit 1 on any violation.
fn check_trace_events(path: &str, expect_trace: Option<&str>) -> Result<i32, SsgError> {
    let doc = read_json_file(path)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| SsgError::parse(path, "missing traceEvents array"))?;
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let mut spans = 0usize;
    let mut expect_seen = expect_trace.is_none();
    for (i, e) in events.iter().enumerate() {
        let field_str = |k: &str| e.get(k).and_then(Json::as_str).map(str::to_string);
        let ph = field_str("ph")
            .ok_or_else(|| SsgError::parse(path, format!("event {i}: missing ph")))?;
        if ph == "M" {
            continue;
        }
        let name = field_str("name")
            .ok_or_else(|| SsgError::parse(path, format!("event {i}: missing name")))?;
        let lane = (
            e.get("pid").and_then(Json::as_u64).unwrap_or(0),
            e.get("tid").and_then(Json::as_u64).unwrap_or(0),
        );
        if let Some(want) = expect_trace {
            let tagged = matches!(
                e.get("args").and_then(|a| a.get("trace_id")).and_then(Json::as_str),
                Some(got) if got == want
            );
            if tagged && ph == "B" {
                expect_seen = true;
            }
        }
        match ph.as_str() {
            "B" => {
                spans += 1;
                stacks.entry(lane).or_default().push(name);
            }
            "E" => match stacks.entry(lane).or_default().pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    eprintln!("trace check: {path}: E `{name}` closes B `{open}` (event {i})");
                    return Ok(1);
                }
                None => {
                    eprintln!("trace check: {path}: E `{name}` with no open B (event {i})");
                    return Ok(1);
                }
            },
            "i" => {}
            other => {
                eprintln!("trace check: {path}: unexpected phase `{other}` (event {i})");
                return Ok(1);
            }
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            eprintln!("trace check: {path}: unclosed B `{open}` on lane {pid}/{tid}");
            return Ok(1);
        }
    }
    if !expect_seen {
        eprintln!(
            "trace check: {path}: expected trace id {} not found on any span",
            expect_trace.unwrap_or("?")
        );
        return Ok(1);
    }
    println!(
        "trace check: {path}: {} span pair(s) matched{}",
        spans,
        expect_trace.map_or(String::new(), |t| format!(", trace {t} present"))
    );
    Ok(0)
}

/// `ssg profile <dump.json> [--format text|json]` — fold a flight-recorder
/// dump into the `ssg-profile/v1` self-time call tree.
fn cmd_profile(args: &[String]) -> Result<i32, SsgError> {
    let usage = || SsgError::Usage("ssg profile <dump.json> [--format text|json]".into());
    let path = args.first().ok_or_else(usage)?;
    if path.starts_with("--") {
        return Err(usage());
    }
    let mut format = OutputFormat::Text;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => format = parse_format("profile", &mut it)?,
            _ => return Err(usage()),
        }
    }
    let dump = read_trace_dump(path)?;
    let profile = Profile::from_dump(&dump);
    match format {
        OutputFormat::Text => print!("{}", profile.to_text()),
        OutputFormat::Json => print!("{}", profile.to_json().render_pretty()),
    }
    Ok(0)
}
