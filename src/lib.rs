//! # strongly-simplicial
//!
//! A complete Rust implementation of *Channel Assignment on
//! Strongly-Simplicial Graphs* (A.A. Bertossi, M.C. Pinotti, R. Rizzi,
//! IPPS 2003): optimal `L(1,...,1)`-colorings and approximate
//! `L(δ1,1,...,1)` / `L(δ1,δ2)`-colorings of trees, interval graphs and unit
//! interval graphs, together with the full substrate the algorithms stand on
//! (graphs, interval models, rooted-tree machinery, t-simplicial theory) and
//! a synthetic wireless-network workload generator.
//!
//! This facade crate re-exports every workspace crate under one roof:
//!
//! * [`graph`] — CSR graphs, traversal, `A_{G,t}` powers, generators.
//! * [`intervals`] — interval / unit-interval representations and sweeps.
//! * [`tree`] — rooted trees, BFS orders, `D_i(x)` descendant lists and
//!   `F_t(y)` up-neighborhoods (paper Figures 3–4).
//! * [`simplicial`] — t-simplicial vertex theory and the generic Lemma-2
//!   peeling solver.
//! * [`labeling`] — the paper's algorithms A1–A5 plus exact oracles and
//!   baselines.
//! * [`engine`] — the sharded batch labeling engine (bounded work-stealing
//!   queues, workspace leases, panic isolation, deadlines).
//! * [`error`] — the unified [`SsgError`](error::SsgError) every public
//!   fallible entry point returns.
//! * [`net`] — the TCP front door (`ssg serve`): the `ssg-proto/1` line
//!   protocol plus minimal HTTP/1.1 on one sniffed port, and the
//!   open-loop `ssg loadgen` load generator (see `PROTOCOL.md`).
//! * [`netsim`] — synthetic wireless workloads and the rayon-parallel
//!   experiment harness.
//! * [`lab`] — the declarative scenario lab behind `ssg lab`: parameter-grid
//!   specs expanded into deterministic cells, resumable run directories,
//!   and the committed-baseline regression gate.
//! * [`telemetry`] — zero-dependency work counters, phase timers, latency
//!   histograms, tracing spans, the flight recorder, and the hand-rolled
//!   JSON writer behind `ssg bench --format json`, plus the Chrome
//!   trace-event exporter and self-time profiler behind `ssg trace` and
//!   `ssg profile`.
//! * [`bench`](mod@bench) — the `ssg bench` harness producing
//!   `ssg-bench/v2` reports over the five paper algorithms.
//!
//! ## Quickstart
//!
//! ```
//! use strongly_simplicial::prelude::*;
//!
//! // A small interval graph: five stations along a corridor.
//! let spec = vec![(0.0, 2.5), (1.0, 3.5), (3.0, 6.0), (5.0, 8.0), (7.0, 9.0)];
//! let rep = IntervalRepresentation::from_floats(&spec).unwrap();
//!
//! // Optimal L(1,1)-coloring (t = 2): stations within two hops get distinct
//! // channels.
//! let out = interval_l1_coloring(&rep, 2);
//! let g = rep.to_graph();
//! assert!(verify_labeling(&g, &SeparationVector::all_ones(2), out.labeling.colors()).is_ok());
//! ```

#![forbid(unsafe_code)]

pub use ssg_engine as engine;
pub use ssg_error as error;
pub use ssg_graph as graph;
pub use ssg_intervals as intervals;
pub use ssg_lab as lab;
pub use ssg_labeling as labeling;
pub use ssg_net as net;
pub use ssg_netsim as netsim;
pub use ssg_simplicial as simplicial;
pub use ssg_telemetry as telemetry;
pub use ssg_tree as tree;

pub mod bench;

/// Convenient glob-import surface covering the most common types and entry
/// points from every crate.
pub mod prelude {
    pub use ssg_engine::{Backpressure, Engine, LabelRequest, LabelResponse, RequestInstance};
    pub use ssg_error::SsgError;
    pub use ssg_graph::{augmented_graph, Graph, GraphBuilder, Vertex};
    pub use ssg_intervals::{IntervalRepresentation, UnitIntervalRepresentation};
    pub use ssg_labeling::interval::{approx_delta1_coloring, l1_coloring as interval_l1_coloring};
    pub use ssg_labeling::solver::{default_registry, Problem, ProblemInstance, Solver};
    pub use ssg_labeling::tree::{
        approx_delta1_coloring as tree_approx_delta1_coloring, l1_coloring as tree_l1_coloring,
    };
    pub use ssg_labeling::unit_interval::l_delta1_delta2_coloring;
    pub use ssg_labeling::{
        verify_labeling, Labeling, SeparationVector, SolverRegistry, Workspace, WorkspacePool,
    };
    pub use ssg_net::{run_loadgen, LoadgenConfig, Server, ServerConfig};
    pub use ssg_simplicial::{is_strongly_simplicial, is_t_simplicial, peel_l1_coloring};
    pub use ssg_tree::RootedTree;
}
