//! Automatic class detection and algorithm dispatch: feed bare graphs of
//! different classes to `auto_coloring` and see which paper algorithm (and
//! guarantee) each one gets.
//!
//! ```sh
//! cargo run --example auto_dispatch
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use strongly_simplicial::labeling::auto::{auto_coloring, Guarantee};
use strongly_simplicial::labeling::{verify_labeling, SeparationVector};
use strongly_simplicial::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let inputs: Vec<(&str, Graph)> = vec![
        (
            "random tree",
            strongly_simplicial::graph::generators::random_tree(60, &mut rng),
        ),
        (
            "two-tree forest",
            Graph::from_edges(9, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (5, 8)])
                .unwrap(),
        ),
        (
            "vehicle platoon (unit interval)",
            strongly_simplicial::intervals::gen::corridor_unit_intervals(50, 4, &mut rng)
                .to_graph(),
        ),
        (
            "chordal non-interval",
            Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap(),
        ),
        (
            "8-cycle (outside every class)",
            strongly_simplicial::graph::generators::cycle(8),
        ),
    ];

    for sep in [
        SeparationVector::all_ones(2),
        SeparationVector::two(2, 1).unwrap(),
        SeparationVector::delta1_then_ones(3, 2).unwrap(),
    ] {
        println!("=== separation {sep} ===");
        for (name, g) in &inputs {
            let out = auto_coloring(g, &sep);
            verify_labeling(g, &sep, out.labeling.colors()).expect("dispatch output is legal");
            let guarantee = match out.guarantee {
                Guarantee::Optimal => "optimal".to_string(),
                Guarantee::Approximation(f) => format!("{f}-approx"),
                Guarantee::Heuristic => "heuristic".to_string(),
            };
            println!(
                "  {name:<34} -> {:<14?} {:<34} span {:>3}  [{guarantee}]",
                out.class,
                out.algorithm,
                out.labeling.span()
            );
        }
    }
}
