//! Backbone scenario: channel assignment on a hierarchical (tree) wireless
//! backbone with varying interference radius `t` and adjacent-channel
//! separation `δ1`. Shows the optimal tree algorithm (Figure 5), the §4.2
//! approximation, and the greedy baseline.
//!
//! ```sh
//! cargo run --release --example backbone [n] [max_degree] [seed]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use strongly_simplicial::netsim::BackboneNetwork;
use strongly_simplicial::prelude::SeparationVector;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let max_degree: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let mut rng = StdRng::seed_from_u64(seed);
    let net = BackboneNetwork::generate(n, max_degree, &mut rng);
    println!(
        "backbone: {} nodes, max degree <= {}, height {}",
        n,
        max_degree,
        net.tree().height()
    );

    println!("\noptimal L(1,...,1) spans vs interference radius:");
    println!(
        "{:>3} {:>8} {:>14} {:>10}",
        "t", "λ*", "greedy span", "overhead"
    );
    for t in 1..=8u32 {
        let opt = net.assign_l1(t);
        let greedy = net.assign_greedy(&SeparationVector::all_ones(t));
        assert!(opt.verified && greedy.verified);
        let overhead = greedy.span as f64 / opt.span.max(1) as f64;
        println!(
            "{:>3} {:>8} {:>14} {:>9.2}x",
            t, opt.span, greedy.span, overhead
        );
    }

    println!("\nδ1-separated assignments (t = 2):");
    println!(
        "{:>4} {:>10} {:>12} {:>14}",
        "δ1", "span", "bound", "ratio vs L"
    );
    for d1 in [1u32, 2, 4, 8, 16] {
        let r = net.assign_delta1(2, d1);
        assert!(r.verified);
        let ratio = r.span as f64 / r.lower_bound.max(1) as f64;
        println!(
            "{:>4} {:>10} {:>12} {:>13.2}",
            d1, r.span, r.lower_bound, ratio
        );
    }
}
