//! Quickstart: color a small interval graph and a small tree with the
//! paper's optimal algorithms, verify the results, and print the channel
//! plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use strongly_simplicial::labeling::tree::to_original_ids;
use strongly_simplicial::prelude::*;

fn main() {
    // --- Interval graph: five stations along a corridor -------------------
    // Each tuple is a hearing footprint [from, to] on the line.
    let footprints = vec![(0.0, 2.5), (1.0, 3.5), (3.0, 6.0), (5.0, 8.0), (7.0, 9.0)];
    let rep = IntervalRepresentation::from_floats(&footprints).expect("valid intervals");
    let g = rep.to_graph();

    println!(
        "interval graph: {} stations, {} conflicts",
        g.num_vertices(),
        g.num_edges()
    );
    for t in 1..=3u32 {
        let out = interval_l1_coloring(&rep, t);
        let sep = SeparationVector::all_ones(t);
        verify_labeling(&g, &sep, out.labeling.colors()).expect("optimal coloring is legal");
        println!(
            "  {sep}: span λ* = {} — channels {:?}",
            out.lambda_star,
            out.labeling.colors()
        );
    }

    // With a δ1 = 3 separation between adjacent stations (§3.2):
    let out = approx_delta1_coloring(&rep, 2, 3);
    let sep = SeparationVector::delta1_then_ones(3, 2).expect("valid separations");
    verify_labeling(&g, &sep, out.labeling.colors()).expect("approximation is legal");
    println!(
        "  {sep}: span {} (guaranteed <= {}) — channels {:?}",
        out.labeling.span(),
        out.upper_bound,
        out.labeling.colors()
    );

    // --- Tree: a small hierarchical network --------------------------------
    let edges = [(0u32, 1u32), (0, 2), (1, 3), (1, 4), (2, 5), (4, 6), (4, 7)];
    let tg = Graph::from_edges(8, &edges).expect("valid tree edges");
    let tree = RootedTree::bfs_canonical(&tg, 0).expect("a tree");
    println!("\ntree: {} nodes, height {}", tree.len(), tree.height());
    for t in 1..=3u32 {
        let out = tree_l1_coloring(&tree, t);
        let lab = to_original_ids(&tree, &out.labeling);
        let sep = SeparationVector::all_ones(t);
        verify_labeling(&tg, &sep, lab.colors()).expect("optimal tree coloring is legal");
        println!(
            "  {sep}: span λ* = {} — channels {:?}",
            out.lambda_star,
            lab.colors()
        );
    }

    // The theory behind it: the deepest vertex is strongly-simplicial
    // (Lemma 5), the last interval is strongly-simplicial (Lemma 3).
    let deepest = tree.original_id(tree.len() as u32 - 1);
    assert!(is_strongly_simplicial(&tg, deepest));
    assert!(is_strongly_simplicial(&g, g.num_vertices() as u32 - 1));
    println!("\nLemmas 3 & 5 verified on these instances.");
}
