//! Highway scenario: channel assignment for roadside units and a vehicle
//! platoon. Demonstrates the interval and unit-interval algorithms against
//! the greedy baseline on realistically-shaped workloads.
//!
//! ```sh
//! cargo run --release --example highway [n] [seed]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use strongly_simplicial::netsim::{CorridorNetwork, VehicularNetwork};
use strongly_simplicial::prelude::SeparationVector;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    // --- Roadside units with heterogeneous ranges (interval graph) --------
    let mut rng = StdRng::seed_from_u64(seed);
    let corridor = CorridorNetwork::generate(n, 1.0, 1.0, 6.0, &mut rng);
    println!(
        "corridor: {} stations, {} conflicts, clique {}",
        n,
        corridor.graph().num_edges(),
        corridor.representation().max_clique()
    );
    println!(
        "{:<22} {:>6} {:>9} {:>8} {:>6}",
        "algorithm", "span", "channels", "lower", "ok"
    );
    for t in [1u32, 2, 4] {
        let opt = corridor.assign_l1(t);
        let greedy = corridor.assign_greedy(&SeparationVector::all_ones(t));
        for r in [&opt, &greedy] {
            println!(
                "{:<22} {:>6} {:>9} {:>8} {:>6}   (t={t})",
                r.algorithm, r.span, r.distinct_channels, r.lower_bound, r.verified
            );
        }
    }
    for (t, d1) in [(2u32, 4u32), (3, 6)] {
        let approx = corridor.assign_delta1(t, d1);
        let greedy = corridor.assign_greedy(&SeparationVector::delta1_then_ones(d1, t).unwrap());
        for r in [&approx, &greedy] {
            println!(
                "{:<22} {:>6} {:>9} {:>8} {:>6}   (t={t}, δ1={d1})",
                r.algorithm, r.span, r.distinct_channels, r.lower_bound, r.verified
            );
        }
    }

    // --- Vehicle platoon (unit interval graph) ----------------------------
    println!("\nplatoon (unit intervals):");
    let platoon = VehicularNetwork::platoon(n, 6, &mut rng);
    println!(
        "  {} vehicles, clique {}",
        n,
        platoon.representation().max_clique()
    );
    for (d1, d2) in [(2u32, 1u32), (5, 1), (3, 2)] {
        let ours = platoon.assign_l_delta(d1, d2);
        let greedy = platoon.assign_greedy(d1, d2);
        println!(
            "  L({d1},{d2}): paper span {} vs greedy {} (lower bound {}, verified {}/{})",
            ours.span, greedy.span, ours.lower_bound, ours.verified, greedy.verified
        );
    }
}
